//! # pbs-structs — RCU-protected data structures over pluggable allocators
//!
//! The kernel subsystems the paper benchmarks (VFS dentry hash, inode
//! tables, socket tables, epoll) are all RCU-protected linked structures
//! whose nodes live in slab caches. This crate provides the userspace
//! equivalents, parameterized over any [`ObjectAllocator`] so the same
//! workload can run on the SLUB baseline or on Prudence:
//!
//! * [`RcuList`] — the paper's Figure 1 example: a keyed singly-linked
//!   list with wait-free readers and copy-on-update writers that defer
//!   freeing of old node versions.
//! * [`RcuHashMap`] — a fixed-bucket hash table with per-bucket RCU
//!   chains (the shape of the dentry cache and TCP established-connection
//!   tables).
//! * [`RcuBst`] — a binary search tree whose restructuring removals defer
//!   *multiple* old node versions per operation (paper §3.1: "tree
//!   re-balancing results in multiple deferred objects").
//!
//! Values must be `Copy`: deferred reclamation frees node *memory* after
//! the grace period without running destructors, exactly like `kfree`-ing
//! a kernel struct.
//!
//! [`ObjectAllocator`]: pbs_alloc_api::ObjectAllocator
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use pbs_mem::PageAllocator;
//! use pbs_rcu::Rcu;
//! use pbs_structs::RcuList;
//! use prudence::{PrudenceCache, PrudenceConfig};
//!
//! let pages = Arc::new(PageAllocator::new());
//! let rcu = Arc::new(Rcu::new());
//! let cache = Arc::new(PrudenceCache::new("nodes", 64, PrudenceConfig::new(2), pages, Arc::clone(&rcu)));
//!
//! let list: RcuList<u64> = RcuList::new(cache);
//! let reader = rcu.register();
//!
//! list.insert(1, 100)?;
//! list.update(1, 200)?; // copy-update; old version deferred-freed
//! let guard = reader.read_lock();
//! assert_eq!(list.lookup(&guard, 1), Some(200));
//! # drop(guard);
//! # Ok::<(), pbs_alloc_api::AllocError>(())
//! ```

mod bst;
mod hashmap;
mod list;

pub use bst::RcuBst;
pub use hashmap::RcuHashMap;
pub use list::RcuList;
