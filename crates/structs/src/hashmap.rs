//! RCU-protected fixed-bucket hash map with per-bucket chains.

use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use pbs_alloc_api::{AllocError, ObjPtr, ObjectAllocator};
use pbs_rcu::reclaim::ReclaimBackend;
use pbs_rcu::{ReadGuard, TraversalKind};

#[repr(C)]
struct Node<K, V> {
    key: K,
    value: V,
    next: AtomicPtr<Node<K, V>>,
}

/// An RCU hash table shaped like the kernel's dentry cache / connection
/// tables: a fixed power-of-two bucket array whose chains are traversed by
/// wait-free RCU readers, with per-bucket writer locks. Node memory comes
/// from the [`ObjectAllocator`] supplied at construction and old versions
/// are deferred-freed on update/remove.
///
/// Keys and values must be `Copy` (reclamation frees memory without
/// running destructors) and keys must be `Hash + Eq`.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use pbs_mem::PageAllocator;
/// use pbs_rcu::Rcu;
/// use pbs_structs::RcuHashMap;
/// use prudence::{PrudenceCache, PrudenceConfig};
///
/// let pages = Arc::new(PageAllocator::new());
/// let rcu = Arc::new(Rcu::new());
/// let cache = Arc::new(PrudenceCache::new("map-nodes", 64, PrudenceConfig::new(2), pages, Arc::clone(&rcu)));
///
/// let map: RcuHashMap<u64, u64> = RcuHashMap::new(cache, 64);
/// let reader = rcu.register();
/// map.insert(3, 30)?;
/// let guard = reader.read_lock();
/// assert_eq!(map.get(&guard, &3), Some(30));
/// # drop(guard);
/// # Ok::<(), pbs_alloc_api::AllocError>(())
/// ```
pub struct RcuHashMap<K, V> {
    buckets: Vec<AtomicPtr<Node<K, V>>>,
    locks: Vec<Mutex<()>>,
    mask: usize,
    alloc: Arc<dyn ObjectAllocator>,
    len: AtomicUsize,
    domain_id: u64,
    /// The reclamation backend node frees defer into; selects the
    /// per-hop protection of read-side walks (see `check_guard`).
    backend: ReclaimBackend,
    kind: TraversalKind,
    _marker: PhantomData<(K, V)>,
}

// SAFETY: nodes are plain data behind atomics; per-bucket mutation is
// serialized by `locks` and reclamation by RCU.
unsafe impl<K: Copy + Send + Sync, V: Copy + Send + Sync> Send for RcuHashMap<K, V> {}
unsafe impl<K: Copy + Send + Sync, V: Copy + Send + Sync> Sync for RcuHashMap<K, V> {}

impl<K, V> std::fmt::Debug for RcuHashMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RcuHashMap")
            .field("buckets", &self.buckets.len())
            .field("len", &self.len.load(Ordering::Relaxed))
            .finish()
    }
}

impl<K, V> RcuHashMap<K, V>
where
    K: Copy + Send + Sync + Hash + Eq,
    V: Copy + Send + Sync,
{
    /// Creates a map with `buckets` chains (rounded up to a power of two).
    ///
    /// # Panics
    ///
    /// Panics if the allocator's objects cannot hold a node, or `buckets`
    /// is zero.
    pub fn new(alloc: Arc<dyn ObjectAllocator>, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!(
            std::mem::size_of::<Node<K, V>>() <= alloc.object_size(),
            "allocator objects too small: need {} bytes, cache serves {}",
            std::mem::size_of::<Node<K, V>>(),
            alloc.object_size()
        );
        assert!(
            std::mem::align_of::<Node<K, V>>() <= 8,
            "allocator objects are 8-byte aligned; node needs more"
        );
        let n = buckets.next_power_of_two();
        let domain_id = alloc.rcu().id();
        let backend = alloc
            .reclaim_domain()
            .map(|d| d.backend())
            .unwrap_or(ReclaimBackend::Epoch);
        Self {
            buckets: (0..n).map(|_| AtomicPtr::new(ptr::null_mut())).collect(),
            locks: (0..n).map(|_| Mutex::new(())).collect(),
            mask: n - 1,
            alloc,
            len: AtomicUsize::new(0),
            domain_id,
            backend,
            kind: TraversalKind::from(backend),
            _marker: PhantomData,
        }
    }

    fn bucket_of(&self, key: &K) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) & self.mask
    }

    fn check_guard(&self, guard: &ReadGuard<'_>) {
        assert_eq!(
            guard.domain_id(),
            self.domain_id,
            "read guard belongs to a different RCU domain than this map's allocator"
        );
        // See `RcuList::check_guard`: the guard must also participate in
        // the backend that reclaims the nodes, or it protects nothing.
        assert!(
            guard.protects_backend(self.backend),
            "read guard's RCU domain is not watched by this map's `{}` reclamation backend",
            self.backend.label()
        );
    }

    fn alloc_node(&self, key: K, value: V, next: *mut Node<K, V>) -> Result<*mut Node<K, V>, AllocError> {
        let obj = self.alloc.allocate()?;
        let node = obj.as_ptr().cast::<Node<K, V>>();
        // SAFETY: exclusive, large and aligned enough (checked in `new`).
        unsafe {
            node.write(Node {
                key,
                value,
                next: AtomicPtr::new(next),
            });
        }
        Ok(node)
    }

    fn obj_of(node: *mut Node<K, V>) -> ObjPtr {
        // SAFETY: never called with null.
        ObjPtr::new(unsafe { ptr::NonNull::new_unchecked(node.cast()) })
    }

    /// Retires an unlinked node; under a robust backend its chain link
    /// is poisoned first so parked traversals restart from the bucket
    /// head instead of following it (see `RcuList::retire`).
    ///
    /// # Safety
    ///
    /// `node` must be unlinked and retired exactly once.
    unsafe fn retire(&self, node: *mut Node<K, V>) {
        if self.backend != ReclaimBackend::Epoch {
            pbs_rcu::poison_link(&(*node).next);
        }
        self.alloc.free_deferred(Self::obj_of(node));
    }

    /// Number of entries (approximate under concurrent writers).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts `key → value`, replacing (copy-on-update + deferred free)
    /// any existing entry. Returns `true` if an entry was replaced.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if node allocation fails; the map is
    /// unchanged.
    pub fn insert(&self, key: K, value: V) -> Result<bool, AllocError> {
        let b = self.bucket_of(&key);
        let _w = self.locks[b].lock();
        // SAFETY: bucket lock held; chain stable under us. The chain scan
        // needs no per-hop hazard protection under any backend: unlinking
        // requires this same bucket lock, so every node the scan touches
        // is still reachable, and no backend reclaims an object before it
        // is unlinked.
        unsafe {
            let mut prev: *const AtomicPtr<Node<K, V>> = &self.buckets[b];
            let mut cur = (*prev).load(Ordering::Acquire);
            while !cur.is_null() {
                if (*cur).key == key {
                    let next = (*cur).next.load(Ordering::Acquire);
                    let new = self.alloc_node(key, value, next)?;
                    (*prev).store(new, Ordering::Release);
                    self.retire(cur);
                    return Ok(true);
                }
                prev = &(*cur).next;
                cur = (*prev).load(Ordering::Acquire);
            }
            let head = self.buckets[b].load(Ordering::Acquire);
            let node = self.alloc_node(key, value, head)?;
            self.buckets[b].store(node, Ordering::Release);
        }
        self.len.fetch_add(1, Ordering::Relaxed);
        Ok(false)
    }

    /// Looks up `key` under a read guard, returning a copy of the value.
    ///
    /// The chain walk is a backend-aware protected traversal: plain
    /// `Acquire` loads under epoch, hazard-published hand-over-hand hops
    /// under hp, and per-hop ejection checkpoints (with retry-from-head)
    /// under hyaline.
    ///
    /// # Panics
    ///
    /// Panics if `guard` belongs to a different RCU domain or one whose
    /// reclamation backend does not watch this map's domain.
    pub fn get(&self, guard: &ReadGuard<'_>, key: &K) -> Option<V> {
        self.check_guard(guard);
        let b = self.bucket_of(key);
        guard.walk(self.kind, |t| {
            let mut cur = t.load(&self.buckets[b])?;
            while !cur.is_null() {
                // SAFETY: `t.load` only returns pointers it protects for
                // this hop (see `RcuList::lookup`).
                let node = unsafe { &*cur };
                if node.key == *key {
                    let value = node.value;
                    // Confirm the copy was taken under live protection
                    // before letting it escape the walk.
                    t.checkpoint()?;
                    return Ok(Some(value));
                }
                cur = t.load(&node.next)?;
            }
            Ok(None)
        })
    }

    /// Removes `key`, deferring the free of its node. Returns the removed
    /// value, if any.
    pub fn remove(&self, key: &K) -> Option<V> {
        let b = self.bucket_of(key);
        let _w = self.locks[b].lock();
        // SAFETY: as in `insert` (lock-serialized reachability).
        unsafe {
            let mut prev: *const AtomicPtr<Node<K, V>> = &self.buckets[b];
            let mut cur = (*prev).load(Ordering::Acquire);
            while !cur.is_null() {
                if (*cur).key == *key {
                    let next = (*cur).next.load(Ordering::Acquire);
                    let value = (*cur).value;
                    (*prev).store(next, Ordering::Release);
                    self.retire(cur);
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    return Some(value);
                }
                prev = &(*cur).next;
                cur = (*prev).load(Ordering::Acquire);
            }
        }
        None
    }

    /// Inserts `key → value` only if `key` is absent. Returns `true` if it
    /// inserted, `false` if the key already existed (map unchanged).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if node allocation fails.
    pub fn insert_if_absent(&self, key: K, value: V) -> Result<bool, AllocError> {
        let b = self.bucket_of(&key);
        let _w = self.locks[b].lock();
        // SAFETY: as in `insert` (lock-serialized reachability).
        unsafe {
            let mut cur = self.buckets[b].load(Ordering::Acquire);
            while !cur.is_null() {
                if (*cur).key == key {
                    return Ok(false);
                }
                cur = (*cur).next.load(Ordering::Acquire);
            }
            let head = self.buckets[b].load(Ordering::Acquire);
            let node = self.alloc_node(key, value, head)?;
            self.buckets[b].store(node, Ordering::Release);
        }
        self.len.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Visits every entry under a read guard.
    ///
    /// Each bucket chain runs as one protected walk; a retry (hazard
    /// revalidation failure or hyaline ejection) restarts the chain from
    /// its head, and the positional `emitted` cursor — which lives
    /// outside the walk — skips entries the visitor already saw, so `f`
    /// never observes a duplicate from the same chain position.
    ///
    /// # Panics
    ///
    /// Panics on a cross-domain or backend-mismatched guard.
    pub fn for_each(&self, guard: &ReadGuard<'_>, mut f: impl FnMut(&K, &V)) {
        self.check_guard(guard);
        for bucket in &self.buckets {
            let mut emitted = 0usize;
            guard.walk(self.kind, |t| {
                let mut index = 0usize;
                let mut cur = t.load(bucket)?;
                while !cur.is_null() {
                    // SAFETY: per-hop protected load, as in `get`.
                    let node = unsafe { &*cur };
                    if index >= emitted {
                        let (key, value) = (node.key, node.value);
                        t.checkpoint()?;
                        // Past the checkpoint the copies are proven to
                        // have been taken under protection; hand them to
                        // the visitor before advancing the cursor.
                        f(&key, &value);
                        emitted += 1;
                    }
                    index += 1;
                    cur = t.load(&node.next)?;
                }
                Ok(())
            });
        }
    }
}

impl<K, V> Drop for RcuHashMap<K, V> {
    fn drop(&mut self) {
        for bucket in &self.buckets {
            let mut cur = bucket.load(Ordering::Acquire);
            while !cur.is_null() {
                // SAFETY: exclusive access during drop.
                unsafe {
                    let next = (*cur).next.load(Ordering::Acquire);
                    self.alloc
                        .free(ObjPtr::new(ptr::NonNull::new_unchecked(cur.cast())));
                    cur = next;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbs_mem::PageAllocator;
    use pbs_rcu::{Rcu, RcuConfig};
    use pbs_slub::SlubCache;
    use prudence::{PrudenceCache, PrudenceConfig};

    fn setup_prudence() -> (Arc<Rcu>, Arc<dyn ObjectAllocator>) {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let cache: Arc<dyn ObjectAllocator> = Arc::new(PrudenceCache::new(
            "map-nodes",
            64,
            PrudenceConfig::new(2),
            pages,
            Arc::clone(&rcu),
        ));
        (rcu, cache)
    }

    fn setup_slub() -> (Arc<Rcu>, Arc<dyn ObjectAllocator>) {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let cache: Arc<dyn ObjectAllocator> =
            SlubCache::new("map-nodes", 64, 2, pages, Arc::clone(&rcu));
        (rcu, cache)
    }

    fn smoke(rcu: Arc<Rcu>, cache: Arc<dyn ObjectAllocator>) {
        let map: RcuHashMap<u64, u64> = RcuHashMap::new(Arc::clone(&cache), 16);
        let t = rcu.register();
        for i in 0..200 {
            assert!(!map.insert(i, i * 2).unwrap());
        }
        assert_eq!(map.len(), 200);
        let g = t.read_lock();
        for i in 0..200 {
            assert_eq!(map.get(&g, &i), Some(i * 2));
        }
        assert_eq!(map.get(&g, &999), None);
        drop(g);
        assert!(map.insert(7, 700).unwrap(), "replacement reported");
        let g = t.read_lock();
        assert_eq!(map.get(&g, &7), Some(700));
        drop(g);
        for i in 0..100 {
            assert_eq!(map.remove(&i), Some(if i == 7 { 700 } else { i * 2 }));
        }
        assert_eq!(map.remove(&1000), None);
        assert!(map.insert_if_absent(100, 1).is_ok_and(|inserted| !inserted));
        assert!(map.insert_if_absent(5000, 1).is_ok_and(|inserted| inserted));
        assert!(map.remove(&5000).is_some());
        assert_eq!(map.len(), 100);
        drop(map);
        cache.quiesce();
        assert_eq!(cache.stats().live_objects, 0);
    }

    #[test]
    fn smoke_on_prudence() {
        let (rcu, cache) = setup_prudence();
        smoke(rcu, cache);
    }

    #[test]
    fn smoke_on_slub() {
        let (rcu, cache) = setup_slub();
        smoke(rcu, cache);
    }

    #[test]
    fn concurrent_readers_and_updaters() {
        let (rcu, cache) = setup_prudence();
        let map: Arc<RcuHashMap<u64, [u64; 2]>> = Arc::new(RcuHashMap::new(cache, 64));
        for i in 0..64 {
            map.insert(i, [0, 0]).unwrap();
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let map = Arc::clone(&map);
                let rcu = Arc::clone(&rcu);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let t = rcu.register();
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let g = t.read_lock();
                        if let Some([a, b]) = map.get(&g, &(i % 64)) {
                            assert_eq!(a, b);
                        }
                        i += 1;
                    }
                })
            })
            .collect();
        let writers: Vec<_> = (0..2)
            .map(|w| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        let k = w * 32 + i % 32;
                        map.insert(k, [i, i]).unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(map.len(), 64);
    }

    #[test]
    fn for_each_counts_entries() {
        let (rcu, cache) = setup_prudence();
        let map: RcuHashMap<u64, u64> = RcuHashMap::new(cache, 8);
        let t = rcu.register();
        for i in 0..30 {
            map.insert(i, 1).unwrap();
        }
        let g = t.read_lock();
        let mut count = 0;
        map.for_each(&g, |_, _| count += 1);
        assert_eq!(count, 30);
    }

    fn setup_with_backend(backend: ReclaimBackend) -> (Arc<Rcu>, Arc<dyn ObjectAllocator>) {
        use pbs_rcu::reclaim::{domain_for, ReclaimConfig};
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let domain = domain_for(Arc::clone(&rcu), backend, ReclaimConfig::aggressive());
        let cache: Arc<dyn ObjectAllocator> = Arc::new(PrudenceCache::with_domain(
            "map-nodes",
            64,
            PrudenceConfig::new(2),
            pages,
            domain,
        ));
        (rcu, cache)
    }

    #[test]
    fn robust_backends_walk_chains_with_per_hop_protection() {
        for backend in [ReclaimBackend::Hp, ReclaimBackend::Hyaline] {
            let (rcu, cache) = setup_with_backend(backend);
            let map: RcuHashMap<u64, u64> = RcuHashMap::new(cache, 8);
            let t = rcu.register();
            for i in 0..60 {
                map.insert(i, i * 2).unwrap();
            }
            for i in 0..30 {
                map.insert(i, i * 3).unwrap();
            }
            let g = t.read_lock();
            assert_eq!(map.get(&g, &10), Some(30), "{backend:?}");
            assert_eq!(map.get(&g, &45), Some(90), "{backend:?}");
            assert_eq!(map.get(&g, &99), None, "{backend:?}");
            let mut count = 0;
            let mut sum = 0;
            map.for_each(&g, |k, v| {
                count += 1;
                sum += k + v;
            });
            assert_eq!(count, 60, "{backend:?}");
            let expect: u64 = (0..30).map(|i| i * 4).sum::<u64>()
                + (30..60).map(|i| i * 3).sum::<u64>();
            assert_eq!(sum, expect, "{backend:?}");
        }
    }

    #[test]
    #[should_panic(expected = "different RCU domain")]
    fn cross_domain_guard_panics() {
        let (_rcu, cache) = setup_prudence();
        let map: RcuHashMap<u64, u64> = RcuHashMap::new(cache, 8);
        let other = Rcu::new();
        let t = other.register();
        let g = t.read_lock();
        let _ = map.get(&g, &1);
    }
}
