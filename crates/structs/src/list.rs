//! RCU-protected keyed linked list with copy-on-update writers.

use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use pbs_alloc_api::{AllocError, ObjPtr, ObjectAllocator};
use pbs_rcu::reclaim::ReclaimBackend;
use pbs_rcu::{ReadGuard, TraversalKind};

/// One list node, stored inside an allocator object.
#[repr(C)]
struct Node<T> {
    key: u64,
    value: T,
    next: AtomicPtr<Node<T>>,
}

/// An RCU-protected singly-linked list keyed by `u64`, the paper's
/// Figure 1 workload.
///
/// * **Readers** traverse wait-free under a [`ReadGuard`] and never block
///   writers.
/// * **Writers** serialize on an internal lock (the paper's per-list lock).
///   [`update`](Self::update) replaces a node copy-on-write and defers the
///   free of the old version through the allocator —
///   `free_deferred(old_object)`, paper Listing 2.
///
/// Nodes are allocated from the [`ObjectAllocator`] given at construction,
/// so running the same list over `pbs-slub` vs `prudence` compares the two
/// reclamation designs with identical list code.
///
/// See the [crate-level documentation](crate) for an example.
pub struct RcuList<T> {
    head: AtomicPtr<Node<T>>,
    alloc: Arc<dyn ObjectAllocator>,
    writer: Mutex<()>,
    len: AtomicUsize,
    domain_id: u64,
    /// The reclamation backend the allocator defers freed nodes into;
    /// decides the per-hop protection discipline of every read-side walk
    /// and is enforced against guards in `check_guard`.
    backend: ReclaimBackend,
    kind: TraversalKind,
    _marker: PhantomData<T>,
}

// SAFETY: nodes are plain data (T: Copy + Send + Sync) behind atomics; all
// mutation is serialized by `writer` and reclamation by RCU.
unsafe impl<T: Copy + Send + Sync> Send for RcuList<T> {}
unsafe impl<T: Copy + Send + Sync> Sync for RcuList<T> {}

impl<T> std::fmt::Debug for RcuList<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RcuList")
            .field("len", &self.len.load(Ordering::Relaxed))
            .finish()
    }
}

impl<T: Copy + Send + Sync> RcuList<T> {
    /// Creates an empty list whose nodes live in `alloc`.
    ///
    /// # Panics
    ///
    /// Panics if the allocator's objects are too small or under-aligned
    /// for a node of `T`.
    pub fn new(alloc: Arc<dyn ObjectAllocator>) -> Self {
        assert!(
            std::mem::size_of::<Node<T>>() <= alloc.object_size(),
            "allocator objects too small: need {} bytes, cache serves {}",
            std::mem::size_of::<Node<T>>(),
            alloc.object_size()
        );
        assert!(
            std::mem::align_of::<Node<T>>() <= 8,
            "allocator objects are 8-byte aligned; node needs more"
        );
        let domain_id = alloc.rcu().id();
        let backend = alloc
            .reclaim_domain()
            .map(|d| d.backend())
            .unwrap_or(ReclaimBackend::Epoch);
        Self {
            head: AtomicPtr::new(ptr::null_mut()),
            alloc,
            writer: Mutex::new(()),
            len: AtomicUsize::new(0),
            domain_id,
            backend,
            kind: TraversalKind::from(backend),
            _marker: PhantomData,
        }
    }

    fn check_guard(&self, guard: &ReadGuard<'_>) {
        assert_eq!(
            guard.domain_id(),
            self.domain_id,
            "read guard belongs to a different RCU domain than this list's allocator"
        );
        // Same registry is necessary but not sufficient: the guard's
        // domain must also be watched by the backend the nodes are
        // reclaimed through, or the pin (epoch) / hazard slots (hp) /
        // batch capture (hyaline) it relies on protect nothing.
        assert!(
            guard.protects_backend(self.backend),
            "read guard's RCU domain is not watched by this list's `{}` reclamation backend",
            self.backend.label()
        );
    }

    fn alloc_node(&self, key: u64, value: T, next: *mut Node<T>) -> Result<*mut Node<T>, AllocError> {
        let obj = self.alloc.allocate()?;
        let node = obj.as_ptr().cast::<Node<T>>();
        // SAFETY: the object is exclusively ours, large and aligned enough
        // (checked in `new`).
        unsafe {
            node.write(Node {
                key,
                value,
                next: AtomicPtr::new(next),
            });
        }
        Ok(node)
    }

    fn obj_of(node: *mut Node<T>) -> ObjPtr {
        // SAFETY: node pointers are never null where this is called.
        ObjPtr::new(unsafe { ptr::NonNull::new_unchecked(node.cast()) })
    }

    /// Retires an unlinked node. Under a robust backend its outgoing
    /// link is poisoned first: a traversal parked on the retired node
    /// must restart from the head (it gets [`pbs_rcu::Retry`]) rather
    /// than follow a link whose target can be reclaimed without this
    /// node's own link ever changing. Epoch walkers need the opposite —
    /// retired nodes keep their links so pinned readers can cross them —
    /// so epoch-backed lists never poison.
    ///
    /// # Safety
    ///
    /// `node` must be unlinked (unreachable for new readers) and retired
    /// exactly once.
    unsafe fn retire(&self, node: *mut Node<T>) {
        if self.backend != ReclaimBackend::Epoch {
            pbs_rcu::poison_link(&(*node).next);
        }
        self.alloc.free_deferred(Self::obj_of(node));
    }

    /// Number of entries (approximate under concurrent writers).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a new entry at the head.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if node allocation fails. Duplicate keys are
    /// allowed; [`lookup`](Self::lookup) returns the most recent.
    pub fn insert(&self, key: u64, value: T) -> Result<(), AllocError> {
        let _w = self.writer.lock();
        let head = self.head.load(Ordering::Acquire);
        let node = self.alloc_node(key, value, head)?;
        self.head.store(node, Ordering::Release);
        self.len.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Looks up `key` under an RCU read guard, returning a copy of the
    /// value. Wait-free with respect to writers.
    ///
    /// # Panics
    ///
    /// Panics if `guard` belongs to a different RCU domain than this list's
    /// allocator (that guard would not protect this traversal).
    pub fn lookup(&self, guard: &ReadGuard<'_>, key: u64) -> Option<T> {
        self.check_guard(guard);
        guard.walk(self.kind, |t| {
            let mut cur = t.load(&self.head)?;
            while !cur.is_null() {
                // SAFETY: `cur` came out of a protected load — under
                // epoch the guard keeps it alive, under hp its hazard
                // slot does, under hyaline the pin's capture was live at
                // the load's ejection check.
                let node = unsafe { &*cur };
                if node.key == key {
                    let value = node.value;
                    // Commit only data copied under live protection.
                    t.checkpoint()?;
                    return Ok(Some(value));
                }
                cur = t.load(&node.next)?;
            }
            Ok(None)
        })
    }

    /// Iterates the list under a guard, calling `f` for each entry.
    ///
    /// # Panics
    ///
    /// Panics on a cross-domain guard, as [`lookup`](Self::lookup).
    pub fn for_each(&self, guard: &ReadGuard<'_>, mut f: impl FnMut(u64, &T)) {
        self.check_guard(guard);
        // Entries already delivered to `f`. A revoked attempt (hyaline
        // ejection) restarts the chain and skips this many before
        // emitting again, so nothing is delivered twice: positional
        // resume, exact on a quiescent list and best-effort — like any
        // RCU walk — under concurrent writers.
        let mut emitted = 0usize;
        guard.walk(self.kind, |t| {
            let mut cur = t.load(&self.head)?;
            let mut index = 0usize;
            while !cur.is_null() {
                // SAFETY: as in `lookup`.
                let node = unsafe { &*cur };
                if index >= emitted {
                    let (key, value) = (node.key, node.value);
                    t.checkpoint()?;
                    f(key, &value);
                    emitted += 1;
                }
                index += 1;
                cur = t.load(&node.next)?;
            }
            Ok(())
        });
    }

    /// The Figure 1 update: replaces the first entry with `key` by a new
    /// version carrying `value`, and defers the free of the old version.
    /// Returns `Ok(true)` if an entry was updated.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if allocating the new version fails (the list
    /// is unchanged).
    pub fn update(&self, key: u64, value: T) -> Result<bool, AllocError> {
        let _w = self.writer.lock();
        let mut prev: *const AtomicPtr<Node<T>> = &self.head;
        // SAFETY: the writer lock is held, so the chain of next pointers
        // is stable under us and every node we touch is still reachable.
        // This holds under every reclamation backend without per-hop
        // protection: nodes are only deferred *after* being unlinked, and
        // unlinking requires this same lock — so no backend, robust or
        // not, can reclaim a reachable node out from under the walk.
        unsafe {
            let mut cur = (*prev).load(Ordering::Acquire);
            while !cur.is_null() {
                if (*cur).key == key {
                    let next = (*cur).next.load(Ordering::Acquire);
                    let new = self.alloc_node(key, value, next)?;
                    // Publish the new version; readers see old or new.
                    (*prev).store(new, Ordering::Release);
                    // Defer freeing the old version (Listing 2).
                    self.retire(cur);
                    return Ok(true);
                }
                prev = &(*cur).next;
                cur = (*prev).load(Ordering::Acquire);
            }
        }
        Ok(false)
    }

    /// Unlinks the first entry with `key` and defers its free. Returns
    /// `true` if an entry was removed.
    pub fn remove(&self, key: u64) -> bool {
        let _w = self.writer.lock();
        let mut prev: *const AtomicPtr<Node<T>> = &self.head;
        // SAFETY: as in `update` (lock-serialized reachability covers
        // every backend).
        unsafe {
            let mut cur = (*prev).load(Ordering::Acquire);
            while !cur.is_null() {
                if (*cur).key == key {
                    let next = (*cur).next.load(Ordering::Acquire);
                    (*prev).store(next, Ordering::Release);
                    self.retire(cur);
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    return true;
                }
                prev = &(*cur).next;
                cur = (*prev).load(Ordering::Acquire);
            }
        }
        false
    }
}

impl<T> Drop for RcuList<T> {
    fn drop(&mut self) {
        // Exclusive access: free remaining nodes immediately.
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: no readers or writers can exist during drop.
            unsafe {
                let next = (*cur).next.load(Ordering::Acquire);
                self.alloc
                    .free(ObjPtr::new(ptr::NonNull::new_unchecked(cur.cast())));
                cur = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbs_mem::PageAllocator;
    use pbs_rcu::{Rcu, RcuConfig};
    use prudence::{PrudenceCache, PrudenceConfig};

    fn setup() -> (Arc<Rcu>, Arc<dyn ObjectAllocator>) {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let cache: Arc<dyn ObjectAllocator> = Arc::new(PrudenceCache::new(
            "list-nodes",
            64,
            PrudenceConfig::new(2),
            pages,
            Arc::clone(&rcu),
        ));
        (rcu, cache)
    }

    #[test]
    fn insert_lookup_remove() {
        let (rcu, cache) = setup();
        let list: RcuList<u64> = RcuList::new(cache);
        let t = rcu.register();
        for i in 0..100 {
            list.insert(i, i * 10).unwrap();
        }
        assert_eq!(list.len(), 100);
        let g = t.read_lock();
        assert_eq!(list.lookup(&g, 42), Some(420));
        assert_eq!(list.lookup(&g, 1000), None);
        drop(g);
        assert!(list.remove(42));
        assert!(!list.remove(42));
        let g = t.read_lock();
        assert_eq!(list.lookup(&g, 42), None);
        drop(g);
        assert_eq!(list.len(), 99);
    }

    #[test]
    fn update_replaces_value_and_defers_old() {
        let (rcu, cache) = setup();
        let list: RcuList<u64> = RcuList::new(Arc::clone(&cache));
        let t = rcu.register();
        list.insert(7, 1).unwrap();
        assert!(list.update(7, 2).unwrap());
        assert!(!list.update(8, 2).unwrap());
        let g = t.read_lock();
        assert_eq!(list.lookup(&g, 7), Some(2));
        drop(g);
        assert_eq!(cache.stats().deferred_frees, 1);
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn reader_sees_old_or_new_never_garbage() {
        let (rcu, cache) = setup();
        let list: Arc<RcuList<[u64; 2]>> = Arc::new(RcuList::new(cache));
        list.insert(1, [5, 5]).unwrap();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let list = Arc::clone(&list);
                let rcu = Arc::clone(&rcu);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let t = rcu.register();
                    while !stop.load(Ordering::Relaxed) {
                        let g = t.read_lock();
                        if let Some([a, b]) = list.lookup(&g, 1) {
                            // Invariant: both halves always match — a torn
                            // or reclaimed read would break it.
                            assert_eq!(a, b, "reader saw inconsistent value");
                        }
                    }
                })
            })
            .collect();
        for i in 0..20_000u64 {
            list.update(1, [i, i]).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
    }

    #[test]
    fn for_each_visits_all() {
        let (rcu, cache) = setup();
        let list: RcuList<u64> = RcuList::new(cache);
        let t = rcu.register();
        for i in 0..10 {
            list.insert(i, i).unwrap();
        }
        let g = t.read_lock();
        let mut sum = 0;
        list.for_each(&g, |_, v| sum += *v);
        assert_eq!(sum, 45);
    }

    #[test]
    #[should_panic(expected = "different RCU domain")]
    fn cross_domain_guard_panics() {
        let (_rcu, cache) = setup();
        let list: RcuList<u64> = RcuList::new(cache);
        let other = Rcu::new();
        let t = other.register();
        let g = t.read_lock();
        let _ = list.lookup(&g, 1);
    }

    #[test]
    fn drop_frees_all_nodes() {
        let (_rcu, cache) = setup();
        {
            let list: RcuList<u64> = RcuList::new(Arc::clone(&cache));
            for i in 0..50 {
                list.insert(i, i).unwrap();
            }
        }
        cache.quiesce();
        assert_eq!(cache.stats().live_objects, 0);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn oversized_node_rejected() {
        let (_rcu, cache) = setup();
        let _list: RcuList<[u64; 32]> = RcuList::new(cache);
    }

    fn setup_with_backend(backend: ReclaimBackend) -> (Arc<Rcu>, Arc<dyn ObjectAllocator>) {
        use pbs_rcu::reclaim::{domain_for, ReclaimConfig};
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let domain = domain_for(Arc::clone(&rcu), backend, ReclaimConfig::aggressive());
        let cache: Arc<dyn ObjectAllocator> = Arc::new(PrudenceCache::with_domain(
            "list-nodes",
            64,
            PrudenceConfig::new(2),
            pages,
            domain,
        ));
        (rcu, cache)
    }

    #[test]
    fn robust_backends_walk_with_per_hop_protection() {
        for backend in [ReclaimBackend::Hp, ReclaimBackend::Hyaline] {
            let (rcu, cache) = setup_with_backend(backend);
            let list: RcuList<u64> = RcuList::new(cache);
            let t = rcu.register();
            for i in 0..50 {
                list.insert(i, i * 2).unwrap();
            }
            for i in 0..25 {
                assert!(list.update(i, i * 3).unwrap());
            }
            let g = t.read_lock();
            assert_eq!(list.lookup(&g, 10), Some(30), "{backend}");
            assert_eq!(list.lookup(&g, 40), Some(80), "{backend}");
            assert_eq!(list.lookup(&g, 99), None, "{backend}");
            let mut count = 0;
            list.for_each(&g, |_, _| count += 1);
            assert_eq!(count, 50, "{backend}");
            drop(g);
        }
    }

    /// Delegates to a real cache but routes deferred frees into a
    /// reclamation domain over a *different* `Rcu` — the misconfiguration
    /// `check_guard`'s backend check exists to catch: a guard from the
    /// allocator's own registry passes the domain-id check while the hp
    /// domain that actually frees the nodes never scans that registry, so
    /// the guard's hazards protect nothing.
    struct MiswiredAlloc {
        inner: Arc<dyn ObjectAllocator>,
        domain: Arc<dyn pbs_rcu::reclaim::ReclamationDomain>,
    }

    impl ObjectAllocator for MiswiredAlloc {
        fn allocate(&self) -> Result<ObjPtr, AllocError> {
            self.inner.allocate()
        }
        unsafe fn free(&self, obj: ObjPtr) {
            self.inner.free(obj)
        }
        unsafe fn free_deferred(&self, obj: ObjPtr) {
            self.inner.free_deferred(obj)
        }
        fn object_size(&self) -> usize {
            self.inner.object_size()
        }
        fn name(&self) -> &str {
            "miswired"
        }
        fn rcu(&self) -> &Arc<Rcu> {
            self.inner.rcu()
        }
        fn reclaim_domain(&self) -> Option<&Arc<dyn pbs_rcu::reclaim::ReclamationDomain>> {
            Some(&self.domain)
        }
        fn stats(&self) -> pbs_alloc_api::CacheStatsSnapshot {
            self.inner.stats()
        }
        fn quiesce(&self) {
            self.inner.quiesce()
        }
    }

    #[test]
    #[should_panic(expected = "reclamation backend")]
    fn matching_domain_guard_with_unwatched_backend_panics() {
        use pbs_rcu::reclaim::{domain_for, ReclaimConfig};
        let (rcu, cache) = setup();
        let other = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let domain = domain_for(other, ReclaimBackend::Hp, ReclaimConfig::default());
        let alloc: Arc<dyn ObjectAllocator> = Arc::new(MiswiredAlloc {
            inner: cache,
            domain,
        });
        let list: RcuList<u64> = RcuList::new(alloc);
        let t = rcu.register();
        let g = t.read_lock();
        let _ = list.lookup(&g, 1);
    }
}
