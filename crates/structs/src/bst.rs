//! RCU-protected binary search tree with copy-on-update writers.
//!
//! The paper's motivation (§3.1) singles out trees: "tree re-balancing
//! results in multiple deferred objects" — a single logical update can
//! defer several old node versions at once, amplifying the deferred-free
//! burst the allocator must absorb. This tree reproduces that pattern:
//!
//! * readers traverse wait-free under a [`ReadGuard`],
//! * writers serialize on a tree lock and never mutate reachable nodes in
//!   place: an update copies the node, a removal with two children copies
//!   the successor *and* every node on the path between (an internal
//!   restructuring in the spirit of RCU balanced trees), deferring all
//!   replaced versions.

use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use pbs_alloc_api::{AllocError, ObjPtr, ObjectAllocator};
use pbs_rcu::reclaim::ReclaimBackend;
use pbs_rcu::{ReadGuard, TraversalKind};

#[repr(C)]
struct Node<T> {
    key: u64,
    value: T,
    left: AtomicPtr<Node<T>>,
    right: AtomicPtr<Node<T>>,
}

/// An RCU-protected binary search tree keyed by `u64`.
///
/// Values must be `Copy` (deferred reclamation frees memory without
/// running destructors). Writers are serialized; readers never block.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use pbs_mem::PageAllocator;
/// use pbs_rcu::Rcu;
/// use pbs_structs::RcuBst;
/// use prudence::{PrudenceCache, PrudenceConfig};
///
/// let pages = Arc::new(PageAllocator::new());
/// let rcu = Arc::new(Rcu::new());
/// let cache = Arc::new(PrudenceCache::new("bst", 64, PrudenceConfig::new(2), pages, Arc::clone(&rcu)));
///
/// let tree: RcuBst<u64> = RcuBst::new(cache);
/// let reader = rcu.register();
/// tree.insert(5, 50)?;
/// tree.insert(3, 30)?;
/// let guard = reader.read_lock();
/// assert_eq!(tree.lookup(&guard, 3), Some(30));
/// # drop(guard);
/// # Ok::<(), pbs_alloc_api::AllocError>(())
/// ```
pub struct RcuBst<T> {
    root: AtomicPtr<Node<T>>,
    alloc: Arc<dyn ObjectAllocator>,
    writer: Mutex<()>,
    len: AtomicUsize,
    /// Deferred node versions across the tree's lifetime (diagnostics for
    /// the multiple-deferrals-per-update claim).
    deferred_versions: AtomicU64,
    domain_id: u64,
    /// The reclamation backend node frees defer into; selects the
    /// per-hop protection of read-side walks (see `check_guard`).
    backend: ReclaimBackend,
    kind: TraversalKind,
    _marker: PhantomData<T>,
}

// SAFETY: nodes are plain data (T: Copy + Send + Sync) behind atomics;
// mutation is serialized by `writer`, reclamation by RCU.
unsafe impl<T: Copy + Send + Sync> Send for RcuBst<T> {}
unsafe impl<T: Copy + Send + Sync> Sync for RcuBst<T> {}

impl<T> std::fmt::Debug for RcuBst<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RcuBst")
            .field("len", &self.len.load(Ordering::Relaxed))
            .finish()
    }
}

impl<T: Copy + Send + Sync> RcuBst<T> {
    /// Creates an empty tree whose nodes live in `alloc`.
    ///
    /// # Panics
    ///
    /// Panics if the allocator's objects are too small or under-aligned
    /// for a node of `T`.
    pub fn new(alloc: Arc<dyn ObjectAllocator>) -> Self {
        assert!(
            std::mem::size_of::<Node<T>>() <= alloc.object_size(),
            "allocator objects too small: need {} bytes, cache serves {}",
            std::mem::size_of::<Node<T>>(),
            alloc.object_size()
        );
        assert!(
            std::mem::align_of::<Node<T>>() <= 8,
            "allocator objects are 8-byte aligned; node needs more"
        );
        let domain_id = alloc.rcu().id();
        let backend = alloc
            .reclaim_domain()
            .map(|d| d.backend())
            .unwrap_or(ReclaimBackend::Epoch);
        Self {
            root: AtomicPtr::new(ptr::null_mut()),
            alloc,
            writer: Mutex::new(()),
            len: AtomicUsize::new(0),
            deferred_versions: AtomicU64::new(0),
            domain_id,
            backend,
            kind: TraversalKind::from(backend),
            _marker: PhantomData,
        }
    }

    fn check_guard(&self, guard: &ReadGuard<'_>) {
        assert_eq!(
            guard.domain_id(),
            self.domain_id,
            "read guard belongs to a different RCU domain than this tree's allocator"
        );
        // See `RcuList::check_guard`: the guard must also participate in
        // the backend that reclaims the nodes, or it protects nothing.
        assert!(
            guard.protects_backend(self.backend),
            "read guard's RCU domain is not watched by this tree's `{}` reclamation backend",
            self.backend.label()
        );
    }

    fn alloc_node(
        &self,
        key: u64,
        value: T,
        left: *mut Node<T>,
        right: *mut Node<T>,
    ) -> Result<*mut Node<T>, AllocError> {
        let obj = self.alloc.allocate()?;
        let node = obj.as_ptr().cast::<Node<T>>();
        // SAFETY: exclusive object, large and aligned enough (checked in
        // `new`).
        unsafe {
            node.write(Node {
                key,
                value,
                left: AtomicPtr::new(left),
                right: AtomicPtr::new(right),
            });
        }
        Ok(node)
    }

    fn defer_node(&self, node: *mut Node<T>) {
        self.deferred_versions.fetch_add(1, Ordering::Relaxed);
        // SAFETY: node is unlinked from the tree (only pre-existing
        // readers can still see it) and deferred exactly once. Under a
        // robust backend both child links are poisoned before the defer:
        // a traversal parked on the retired node restarts from the root
        // (see `RcuList::retire`) instead of descending through links
        // whose targets can be reclaimed without this node changing.
        // Callers must finish reading the node's children *before*
        // deferring it — all do, since the copies adopt them.
        unsafe {
            if self.backend != ReclaimBackend::Epoch {
                pbs_rcu::poison_link(&(*node).left);
                pbs_rcu::poison_link(&(*node).right);
            }
            self.alloc
                .free_deferred(ObjPtr::new(ptr::NonNull::new_unchecked(node.cast())));
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Old node versions deferred so far (diagnostics: removals of
    /// two-child nodes defer several per operation).
    pub fn deferred_versions(&self) -> u64 {
        self.deferred_versions.load(Ordering::Relaxed)
    }

    /// Looks up `key` under an RCU read guard.
    ///
    /// The descent runs as a backend-aware protected traversal: plain
    /// `Acquire` loads under epoch, hazard-published hand-over-hand hops
    /// under hp, and per-hop ejection checkpoints (with retry-from-root)
    /// under hyaline.
    ///
    /// # Panics
    ///
    /// Panics if `guard` belongs to a different RCU domain or one whose
    /// reclamation backend does not watch this tree's domain.
    pub fn lookup(&self, guard: &ReadGuard<'_>, key: u64) -> Option<T> {
        self.check_guard(guard);
        guard.walk(self.kind, |t| {
            let mut cur = t.load(&self.root)?;
            while !cur.is_null() {
                // SAFETY: `t.load` only returns pointers it protects for
                // this hop: reachable under epoch, hazard-revalidated
                // under hp, captured-and-not-ejected under hyaline.
                let node = unsafe { &*cur };
                match key.cmp(&node.key) {
                    std::cmp::Ordering::Equal => {
                        let value = node.value;
                        // Confirm the copy was taken under live protection
                        // before letting it escape the walk.
                        t.checkpoint()?;
                        return Ok(Some(value));
                    }
                    std::cmp::Ordering::Less => cur = t.load(&node.left)?,
                    std::cmp::Ordering::Greater => cur = t.load(&node.right)?,
                }
            }
            Ok(None)
        })
    }

    /// In-order traversal under a guard.
    ///
    /// Under epoch this is the classic explicit-stack walk. Under the
    /// robust backends a stack of raw ancestor pointers is exactly the
    /// bug this layer exists to fix — after a mid-walk ejection (or a
    /// hazard revalidation failure) every popped entry may point at
    /// reclaimed memory, and no saved pointer can be re-trusted. So the
    /// robust walk never keeps a stack: each emission re-seeks, from the
    /// root, the smallest key strictly greater than the last one
    /// emitted, holding the best candidate in a dedicated hazard slot
    /// for the length of the descent. On retry the walk restarts from
    /// the root and the `last`-emitted cursor (which lives outside the
    /// walk) guarantees forward progress without duplicates.
    ///
    /// # Panics
    ///
    /// Panics on a cross-domain or backend-mismatched guard.
    pub fn for_each(&self, guard: &ReadGuard<'_>, mut f: impl FnMut(u64, &T)) {
        self.check_guard(guard);
        if self.kind == TraversalKind::Epoch {
            return self.for_each_epoch(f);
        }
        let mut last: Option<u64> = None;
        loop {
            let next = guard.walk(self.kind, |t| {
                let mut cur = t.load(&self.root)?;
                let mut best: *mut Node<T> = ptr::null_mut();
                while !cur.is_null() {
                    // SAFETY: per-hop protected load, as in `lookup`.
                    let node = unsafe { &*cur };
                    let above = match last {
                        Some(l) => node.key > l,
                        None => true,
                    };
                    if above {
                        // New best candidate for the next emission; park
                        // it in the walk's candidate slot so it stays
                        // protected while the descent moves on.
                        best = cur;
                        t.pin_candidate(cur);
                        cur = t.load(&node.left)?;
                    } else {
                        cur = t.load(&node.right)?;
                    }
                }
                if best.is_null() {
                    return Ok(None);
                }
                // SAFETY: `best` is held by the candidate slot (hp) or by
                // the still-valid pin (hyaline, confirmed just below).
                let node = unsafe { &*best };
                let (key, value) = (node.key, node.value);
                t.checkpoint()?;
                Ok(Some((key, value)))
            });
            match next {
                Some((key, value)) => {
                    // Call out to the visitor outside the walk: a retry
                    // can then never re-emit, and a lookup from inside
                    // `f` starts its own depth-1 walk.
                    f(key, &value);
                    last = Some(key);
                }
                None => return,
            }
        }
    }

    /// The epoch-only in-order walk: an explicit stack of raw pointers,
    /// sound because an epoch pin protects everything reachable at any
    /// point during the pin — popped ancestors included.
    fn for_each_epoch(&self, mut f: impl FnMut(u64, &T)) {
        let mut stack = Vec::new();
        let mut cur = self.root.load(Ordering::Acquire);
        while !cur.is_null() || !stack.is_empty() {
            while !cur.is_null() {
                stack.push(cur);
                // SAFETY: guard-protected (epoch: pin covers reachability).
                cur = unsafe { (*cur).left.load(Ordering::Acquire) };
            }
            let node = stack.pop().expect("stack non-empty");
            // SAFETY: guard-protected (epoch: pin covers reachability).
            let node_ref = unsafe { &*node };
            f(node_ref.key, &node_ref.value);
            cur = node_ref.right.load(Ordering::Acquire);
        }
    }

    /// Inserts `key → value`; an existing key is updated copy-on-write
    /// (the old version is deferred). Returns `true` if an entry was
    /// replaced.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] on allocator exhaustion (tree unchanged).
    pub fn insert(&self, key: u64, value: T) -> Result<bool, AllocError> {
        let _w = self.writer.lock();
        // SAFETY: writer lock held; links are stable under us. The read
        // phase below needs no per-hop hazard protection under any
        // backend: unlinking requires this same lock, so every node this
        // descent touches is still reachable, and reachable nodes cannot
        // have been deferred — no backend reclaims an object before it
        // is unlinked.
        unsafe {
            let mut link: *const AtomicPtr<Node<T>> = &self.root;
            let mut cur = (*link).load(Ordering::Acquire);
            while !cur.is_null() {
                match key.cmp(&(*cur).key) {
                    std::cmp::Ordering::Equal => {
                        // Copy-on-update: new version adopts both children.
                        let new = self.alloc_node(
                            key,
                            value,
                            (*cur).left.load(Ordering::Acquire),
                            (*cur).right.load(Ordering::Acquire),
                        )?;
                        (*link).store(new, Ordering::Release);
                        self.defer_node(cur);
                        return Ok(true);
                    }
                    std::cmp::Ordering::Less => link = &(*cur).left,
                    std::cmp::Ordering::Greater => link = &(*cur).right,
                }
                cur = (*link).load(Ordering::Acquire);
            }
            let node = self.alloc_node(key, value, ptr::null_mut(), ptr::null_mut())?;
            (*link).store(node, Ordering::Release);
        }
        self.len.fetch_add(1, Ordering::Relaxed);
        Ok(false)
    }

    /// Removes `key`, returning its value. A two-child removal copies the
    /// in-order successor into place and rebuilds the path down to it,
    /// deferring every replaced version — the multi-deferral pattern the
    /// paper attributes to tree updates.
    pub fn remove(&self, key: u64) -> Option<T> {
        let _w = self.writer.lock();
        // SAFETY: writer lock held throughout; every replaced or unlinked
        // node is deferred exactly once after being made unreachable for
        // new readers. As in `insert`, the descent only dereferences
        // reachable nodes, which no reclamation backend (robust or not)
        // can free out from under the lock that serializes unlinking.
        unsafe {
            let mut link: *const AtomicPtr<Node<T>> = &self.root;
            let mut cur = (*link).load(Ordering::Acquire);
            while !cur.is_null() {
                match key.cmp(&(*cur).key) {
                    std::cmp::Ordering::Less => link = &(*cur).left,
                    std::cmp::Ordering::Greater => link = &(*cur).right,
                    std::cmp::Ordering::Equal => {
                        let value = (*cur).value;
                        let left = (*cur).left.load(Ordering::Acquire);
                        let right = (*cur).right.load(Ordering::Acquire);
                        if left.is_null() || right.is_null() {
                            // Zero or one child: splice out.
                            let child = if left.is_null() { right } else { left };
                            (*link).store(child, Ordering::Release);
                            self.defer_node(cur);
                        } else {
                            // Two children: build a fresh copy of the path
                            // from the right child down to the in-order
                            // successor, with the successor's key/value
                            // hoisted into the removed node's position.
                            match self.remove_with_successor(cur, left, right) {
                                Ok(new_subtree) => {
                                    (*link).store(new_subtree, Ordering::Release);
                                }
                                Err(_) => return None, // allocation failed; tree unchanged
                            }
                        }
                        self.len.fetch_sub(1, Ordering::Relaxed);
                        return Some(value);
                    }
                }
                cur = (*link).load(Ordering::Acquire);
            }
        }
        None
    }

    /// Copies the successor path (see [`remove`](Self::remove)). On
    /// success, defers the removed node and every copied original.
    ///
    /// # Safety
    ///
    /// Writer lock held; `cur` has children `left` and `right`.
    unsafe fn remove_with_successor(
        &self,
        cur: *mut Node<T>,
        left: *mut Node<T>,
        right: *mut Node<T>,
    ) -> Result<*mut Node<T>, AllocError> {
        // Collect the path from `right` to the leftmost (successor) node.
        let mut path = Vec::new();
        let mut walk = right;
        loop {
            let next = (*walk).left.load(Ordering::Acquire);
            if next.is_null() {
                break;
            }
            path.push(walk);
            walk = next;
        }
        let successor = walk;
        // Rebuild bottom-up: the successor is spliced out (replaced by its
        // right child), every path node is copied.
        let mut rebuilt = (*successor).right.load(Ordering::Acquire);
        let mut copies = Vec::with_capacity(path.len() + 1);
        for &orig in path.iter().rev() {
            let copy = self.alloc_node(
                (*orig).key,
                (*orig).value,
                rebuilt,
                (*orig).right.load(Ordering::Acquire),
            );
            match copy {
                Ok(c) => {
                    copies.push(c);
                    rebuilt = c;
                }
                Err(e) => {
                    // Roll back: free the copies (never published).
                    for c in copies {
                        self.alloc
                            .free(ObjPtr::new(ptr::NonNull::new_unchecked(c.cast())));
                    }
                    return Err(e);
                }
            }
        }
        // New top node: successor's key/value, original left subtree, the
        // rebuilt right path (which degenerates to the successor's right
        // child when `right` itself was the successor).
        let top = match self.alloc_node((*successor).key, (*successor).value, left, rebuilt) {
            Ok(t) => t,
            Err(e) => {
                for c in copies {
                    self.alloc
                        .free(ObjPtr::new(ptr::NonNull::new_unchecked(c.cast())));
                }
                return Err(e);
            }
        };
        // Publish happens in the caller; defer all replaced originals:
        // the removed node, the successor, and every copied path node.
        self.defer_node(cur);
        self.defer_node(successor);
        for orig in path {
            self.defer_node(orig);
        }
        Ok(top)
    }
}

impl<T> Drop for RcuBst<T> {
    fn drop(&mut self) {
        // Exclusive access: free remaining nodes immediately.
        let mut stack = vec![self.root.load(Ordering::Acquire)];
        while let Some(node) = stack.pop() {
            if node.is_null() {
                continue;
            }
            // SAFETY: exclusive access during drop; each node freed once.
            unsafe {
                stack.push((*node).left.load(Ordering::Acquire));
                stack.push((*node).right.load(Ordering::Acquire));
                self.alloc
                    .free(ObjPtr::new(ptr::NonNull::new_unchecked(node.cast())));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbs_mem::PageAllocator;
    use pbs_rcu::{Rcu, RcuConfig};
    use prudence::{PrudenceCache, PrudenceConfig};

    fn setup() -> (Arc<Rcu>, Arc<dyn ObjectAllocator>) {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let cache: Arc<dyn ObjectAllocator> = Arc::new(PrudenceCache::new(
            "bst-nodes",
            64,
            PrudenceConfig::new(2),
            pages,
            Arc::clone(&rcu),
        ));
        (rcu, cache)
    }

    #[test]
    fn insert_lookup_inorder() {
        let (rcu, cache) = setup();
        let tree: RcuBst<u64> = RcuBst::new(cache);
        let t = rcu.register();
        for k in [50u64, 30, 70, 20, 40, 60, 80] {
            assert!(!tree.insert(k, k * 10).unwrap());
        }
        assert_eq!(tree.len(), 7);
        let g = t.read_lock();
        assert_eq!(tree.lookup(&g, 40), Some(400));
        assert_eq!(tree.lookup(&g, 41), None);
        let mut keys = Vec::new();
        tree.for_each(&g, |k, _| keys.push(k));
        assert_eq!(keys, vec![20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn update_defers_old_version() {
        let (rcu, cache) = setup();
        let tree: RcuBst<u64> = RcuBst::new(Arc::clone(&cache));
        let t = rcu.register();
        tree.insert(1, 10).unwrap();
        assert!(tree.insert(1, 11).unwrap());
        let g = t.read_lock();
        assert_eq!(tree.lookup(&g, 1), Some(11));
        drop(g);
        assert_eq!(tree.deferred_versions(), 1);
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn remove_leaf_and_single_child() {
        let (rcu, cache) = setup();
        let tree: RcuBst<u64> = RcuBst::new(cache);
        let t = rcu.register();
        for k in [50u64, 30, 70, 20] {
            tree.insert(k, k).unwrap();
        }
        assert_eq!(tree.remove(20), Some(20)); // leaf
        assert_eq!(tree.remove(30), Some(30)); // had one child (now none)
        assert_eq!(tree.remove(99), None);
        let g = t.read_lock();
        let mut keys = Vec::new();
        tree.for_each(&g, |k, _| keys.push(k));
        assert_eq!(keys, vec![50, 70]);
    }

    #[test]
    fn remove_two_children_defers_multiple_versions() {
        let (rcu, cache) = setup();
        let tree: RcuBst<u64> = RcuBst::new(cache);
        let t = rcu.register();
        // Shape: 50 with children 30,70; 70 has left path 60 -> 55.
        for k in [50u64, 30, 70, 60, 55, 80] {
            tree.insert(k, k).unwrap();
        }
        let before = tree.deferred_versions();
        assert_eq!(tree.remove(50), Some(50));
        let deferred = tree.deferred_versions() - before;
        // The paper's claim: a tree restructuring defers several objects
        // at once (removed node + successor + copied path nodes).
        assert!(deferred >= 3, "expected multiple deferrals, got {deferred}");
        let g = t.read_lock();
        let mut keys = Vec::new();
        tree.for_each(&g, |k, _| keys.push(k));
        assert_eq!(keys, vec![30, 55, 60, 70, 80]);
        assert_eq!(tree.lookup(&g, 50), None);
        assert_eq!(tree.lookup(&g, 55), Some(55));
    }

    #[test]
    fn readers_see_consistent_tree_under_churn() {
        let (rcu, cache) = setup();
        let tree: Arc<RcuBst<[u64; 2]>> = Arc::new(RcuBst::new(cache));
        for k in 0..64 {
            tree.insert(k, [k, k]).unwrap();
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let tree = Arc::clone(&tree);
                let rcu = Arc::clone(&rcu);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let t = rcu.register();
                    let mut k = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let g = t.read_lock();
                        if let Some([a, b]) = tree.lookup(&g, k % 64) {
                            assert_eq!(a, b, "torn value under churn");
                        }
                        drop(g);
                        k += 1;
                    }
                });
            }
            for i in 0..10_000u64 {
                let k = i % 64;
                if i % 7 == 0 {
                    tree.remove(k);
                    tree.insert(k, [i, i]).unwrap();
                } else {
                    tree.insert(k, [i, i]).unwrap();
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(tree.len(), 64);
    }

    fn setup_with_backend(backend: ReclaimBackend) -> (Arc<Rcu>, Arc<dyn ObjectAllocator>) {
        use pbs_rcu::reclaim::{domain_for, ReclaimConfig};
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let domain = domain_for(Arc::clone(&rcu), backend, ReclaimConfig::aggressive());
        let cache: Arc<dyn ObjectAllocator> = Arc::new(PrudenceCache::with_domain(
            "bst-nodes",
            64,
            PrudenceConfig::new(2),
            pages,
            domain,
        ));
        (rcu, cache)
    }

    #[test]
    fn robust_backends_keep_inorder_walks_exact() {
        // The seek-above walk (no ancestor stack) must produce the same
        // in-order sequence as the epoch stack walk, including across a
        // two-child removal that hoists the successor's value.
        for backend in [ReclaimBackend::Hp, ReclaimBackend::Hyaline] {
            let (rcu, cache) = setup_with_backend(backend);
            let tree: RcuBst<u64> = RcuBst::new(cache);
            let t = rcu.register();
            for k in [50u64, 30, 70, 20, 40, 60, 80] {
                tree.insert(k, k * 10).unwrap();
            }
            assert_eq!(tree.remove(50), Some(500));
            let g = t.read_lock();
            let mut entries = Vec::new();
            tree.for_each(&g, |k, v| entries.push((k, *v)));
            assert_eq!(
                entries,
                vec![(20, 200), (30, 300), (40, 400), (60, 600), (70, 700), (80, 800)],
                "{backend:?}"
            );
            assert_eq!(tree.lookup(&g, 60), Some(600), "{backend:?}");
            assert_eq!(tree.lookup(&g, 50), None, "{backend:?}");
            // Lookups from inside the visitor start their own walk.
            let mut hits = 0;
            tree.for_each(&g, |k, _| {
                if tree.lookup(&g, k).is_some() {
                    hits += 1;
                }
            });
            assert_eq!(hits, 6, "{backend:?}");
        }
    }

    #[test]
    fn drop_frees_everything() {
        let (_rcu, cache) = setup();
        {
            let tree: RcuBst<u64> = RcuBst::new(Arc::clone(&cache));
            for k in 0..100 {
                tree.insert(k * 7 % 100, k).unwrap();
            }
        }
        cache.quiesce();
        assert_eq!(cache.stats().live_objects, 0);
    }
}
