//! # pbs-simfs — in-memory filesystem substrate
//!
//! A small VFS-shaped filesystem whose allocator traffic matches what the
//! Postmark benchmark induces on a Linux ext4 system (paper §5.3):
//!
//! | operation | slab traffic |
//! |---|---|
//! | `create`  | `ext4_inode` + `dentry` + `selinux` allocations |
//! | `unlink`  | **deferred** frees of all three (Linux frees inodes, dentries and inode security blobs through RCU) |
//! | `open`    | `filp` allocation |
//! | `close`   | **deferred** free of the `filp` (Linux `__fput`/`file_free_rcu`) |
//! | `read`/`append` | transient `fsbuf` allocation + immediate free (page-cache stand-in) |
//! | `lookup`  | wait-free RCU walk of the dentry hash |
//!
//! The filesystem is parameterized by a
//! [`CacheFactory`](pbs_alloc_api::CacheFactory), so identical
//! workload code runs over the SLUB baseline or Prudence — that comparison
//! is Figures 7–13 of the paper.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use pbs_mem::PageAllocator;
//! use pbs_rcu::Rcu;
//! use pbs_simfs::SimFs;
//! use prudence::{PrudenceConfig, PrudenceFactory};
//!
//! let rcu = Arc::new(Rcu::new());
//! let factory = PrudenceFactory::new(
//!     PrudenceConfig::new(2),
//!     Arc::new(PageAllocator::new()),
//!     Arc::clone(&rcu),
//! );
//! let fs = SimFs::new(&factory);
//! let reader = rcu.register();
//!
//! let ino = fs.create(1, 0xBEEF)?;
//! let fd = fs.open(ino)?;
//! fs.append(fd, 4096)?;
//! fs.close(fd)?;
//! let guard = reader.read_lock();
//! assert_eq!(fs.lookup(&guard, 1, 0xBEEF), Some(ino));
//! drop(guard);
//! fs.unlink(1, 0xBEEF)?;
//! fs.quiesce();
//! # Ok::<(), pbs_simfs::FsError>(())
//! ```

mod fs;

pub use fs::{Fd, FsError, Ino, SimFs};
