//! The filesystem implementation.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use pbs_alloc_api::{AllocError, CacheFactory, CacheStatsSnapshot, ObjPtr, ObjectAllocator};
use pbs_rcu::ReadGuard;
use pbs_structs::RcuHashMap;

/// Inode number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ino(pub u64);

/// Open-file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fd(pub usize);

/// Errors returned by [`SimFs`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsError {
    /// Path component not found.
    NotFound,
    /// Name already exists in the directory.
    Exists,
    /// The descriptor is not open.
    BadFd,
    /// The allocator ran out of memory.
    NoMemory,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound => write!(f, "no such file"),
            FsError::Exists => write!(f, "file exists"),
            FsError::BadFd => write!(f, "bad file descriptor"),
            FsError::NoMemory => write!(f, "out of memory"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<AllocError> for FsError {
    fn from(_: AllocError) -> Self {
        FsError::NoMemory
    }
}

/// Per-inode metadata stored in the inode table. Holds the pointer to the
/// inode's SELinux security blob (the `selinux` cache object the paper's
/// workloads all exercise).
#[derive(Debug, Clone, Copy)]
struct InodeMeta {
    selinux: ObjPtr,
}

#[derive(Debug, Clone, Copy)]
struct OpenFile {
    filp: ObjPtr,
    #[allow(dead_code)] // mirrors struct file's inode back-pointer
    ino: Ino,
}

/// Object sizes matching the Linux slab caches the paper reports on.
const EXT4_INODE_SIZE: usize = 1024;
const DENTRY_SIZE: usize = 192;
const FILP_SIZE: usize = 256;
const SELINUX_SIZE: usize = 64;
const FSBUF_SIZE: usize = 512;

/// An in-memory filesystem; see the [crate docs](crate) for the mapping to
/// Postmark/ext4 allocator traffic and an example.
pub struct SimFs {
    /// `(directory, name-hash) → ino`; nodes live in the `dentry` cache.
    dentries: RcuHashMap<(u64, u64), Ino>,
    /// `ino → metadata`; nodes live in the `ext4_inode` cache.
    inodes: RcuHashMap<u64, InodeMeta>,
    filp_cache: Arc<dyn ObjectAllocator>,
    selinux_cache: Arc<dyn ObjectAllocator>,
    buf_cache: Arc<dyn ObjectAllocator>,
    dentry_cache: Arc<dyn ObjectAllocator>,
    inode_cache: Arc<dyn ObjectAllocator>,
    fd_table: Mutex<FdTable>,
    next_ino: AtomicU64,
}

#[derive(Debug, Default)]
struct FdTable {
    files: Vec<Option<OpenFile>>,
    free: Vec<usize>,
}

impl fmt::Debug for SimFs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimFs")
            .field("files", &self.inodes.len())
            .finish()
    }
}

impl SimFs {
    /// Creates a filesystem whose slab caches come from `factory`.
    pub fn new(factory: &dyn CacheFactory) -> Self {
        let dentry_cache = factory.create_cache("dentry", DENTRY_SIZE);
        let inode_cache = factory.create_cache("ext4_inode", EXT4_INODE_SIZE);
        Self {
            dentries: RcuHashMap::new(Arc::clone(&dentry_cache), 4096),
            inodes: RcuHashMap::new(Arc::clone(&inode_cache), 4096),
            filp_cache: factory.create_cache("filp", FILP_SIZE),
            selinux_cache: factory.create_cache("selinux", SELINUX_SIZE),
            buf_cache: factory.create_cache("fsbuf", FSBUF_SIZE),
            dentry_cache,
            inode_cache,
            fd_table: Mutex::new(FdTable::default()),
            next_ino: AtomicU64::new(1),
        }
    }

    /// Creates a file `name` in directory `dir`, allocating an inode, a
    /// dentry and a SELinux context.
    ///
    /// # Errors
    ///
    /// [`FsError::Exists`] if the name is taken, [`FsError::NoMemory`] on
    /// allocator exhaustion.
    pub fn create(&self, dir: u64, name: u64) -> Result<Ino, FsError> {
        let ino = Ino(self.next_ino.fetch_add(1, Ordering::Relaxed));
        let selinux = self.selinux_cache.allocate()?;
        // Stamp the security blob the way the LSM initializes contexts.
        // SAFETY: fresh exclusive object, at least SELINUX_SIZE bytes.
        unsafe { selinux.as_ptr().cast::<u64>().write(ino.0) };
        if !self.dentries.insert_if_absent((dir, name), ino)? {
            // SAFETY: the blob was never published; free immediately.
            unsafe { self.selinux_cache.free(selinux) };
            return Err(FsError::Exists);
        }
        self.inodes
            .insert(ino.0, InodeMeta { selinux })
            .map_err(FsError::from)?;
        Ok(ino)
    }

    /// Removes `name` from `dir`, deferring the frees of its dentry, inode
    /// and SELinux context (as ext4 + SELinux do through RCU).
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if the name does not exist.
    pub fn unlink(&self, dir: u64, name: u64) -> Result<(), FsError> {
        let ino = self.dentries.remove(&(dir, name)).ok_or(FsError::NotFound)?;
        if let Some(meta) = self.inodes.remove(&ino.0) {
            // SAFETY: the blob is unreachable for new readers once the
            // inode is unlinked; RCU readers may still inspect it.
            unsafe { self.selinux_cache.free_deferred(meta.selinux) };
        }
        Ok(())
    }

    /// RCU-walk path lookup: resolves `name` in `dir` without locks.
    ///
    /// # Panics
    ///
    /// Panics if `guard` belongs to a different RCU domain than the
    /// filesystem's allocator.
    pub fn lookup(&self, guard: &ReadGuard<'_>, dir: u64, name: u64) -> Option<Ino> {
        self.dentries.get(guard, &(dir, name))
    }

    /// Opens an inode, allocating a `filp` object.
    ///
    /// # Errors
    ///
    /// [`FsError::NoMemory`] on allocator exhaustion.
    pub fn open(&self, ino: Ino) -> Result<Fd, FsError> {
        let filp = self.filp_cache.allocate()?;
        // SAFETY: fresh exclusive object, at least FILP_SIZE bytes.
        unsafe { filp.as_ptr().cast::<u64>().write(ino.0) };
        let mut table = self.fd_table.lock();
        let fd = match table.free.pop() {
            Some(i) => {
                table.files[i] = Some(OpenFile { filp, ino });
                i
            }
            None => {
                table.files.push(Some(OpenFile { filp, ino }));
                table.files.len() - 1
            }
        };
        Ok(Fd(fd))
    }

    /// Closes a descriptor; the `filp` free is deferred (Linux
    /// `file_free_rcu`).
    ///
    /// # Errors
    ///
    /// [`FsError::BadFd`] if the descriptor is not open.
    pub fn close(&self, fd: Fd) -> Result<(), FsError> {
        let file = {
            let mut table = self.fd_table.lock();
            let slot = table.files.get_mut(fd.0).ok_or(FsError::BadFd)?;
            let file = slot.take().ok_or(FsError::BadFd)?;
            table.free.push(fd.0);
            file
        };
        // SAFETY: the descriptor slot is cleared, so no new references;
        // RCU readers (e.g. procfs-style scans) may still look at it.
        unsafe { self.filp_cache.free_deferred(file.filp) };
        Ok(())
    }

    /// Appends `bytes` to an open file, doing page-cache-style transient
    /// buffer work (allocate, fill, free — not deferred).
    ///
    /// # Errors
    ///
    /// [`FsError::BadFd`] / [`FsError::NoMemory`].
    pub fn append(&self, fd: Fd, bytes: usize) -> Result<(), FsError> {
        self.buffer_io(fd, bytes, 0xA5)
    }

    /// Reads `bytes` from an open file (same transient-buffer traffic as
    /// [`append`](Self::append)).
    ///
    /// # Errors
    ///
    /// [`FsError::BadFd`] / [`FsError::NoMemory`].
    pub fn read(&self, fd: Fd, bytes: usize) -> Result<(), FsError> {
        self.buffer_io(fd, bytes, 0x5A)
    }

    fn buffer_io(&self, fd: Fd, bytes: usize, pattern: u8) -> Result<(), FsError> {
        {
            let table = self.fd_table.lock();
            table
                .files
                .get(fd.0)
                .and_then(|f| f.as_ref())
                .ok_or(FsError::BadFd)?;
        }
        let mut remaining = bytes;
        while remaining > 0 {
            let chunk = remaining.min(FSBUF_SIZE);
            let buf = self.buf_cache.allocate()?;
            // SAFETY: fresh exclusive object of FSBUF_SIZE bytes.
            unsafe {
                std::ptr::write_bytes(buf.as_ptr(), pattern, chunk);
                self.buf_cache.free(buf);
            }
            remaining -= chunk;
        }
        Ok(())
    }

    /// Number of files currently linked.
    pub fn file_count(&self) -> usize {
        self.inodes.len()
    }

    /// Per-cache statistics, keyed by the Linux slab-cache names the paper
    /// uses.
    pub fn stats(&self) -> Vec<(&'static str, CacheStatsSnapshot)> {
        vec![
            ("ext4_inode", self.inode_cache.stats()),
            ("dentry", self.dentry_cache.stats()),
            ("filp", self.filp_cache.stats()),
            ("selinux", self.selinux_cache.stats()),
            ("fsbuf", self.buf_cache.stats()),
        ]
    }

    /// Waits for all deferred frees across the filesystem's caches.
    pub fn quiesce(&self) {
        for cache in [
            &self.dentry_cache,
            &self.inode_cache,
            &self.filp_cache,
            &self.selinux_cache,
            &self.buf_cache,
        ] {
            cache.quiesce();
        }
    }
}

impl Drop for SimFs {
    fn drop(&mut self) {
        // Free remaining SELinux blobs (their owning inodes die with the
        // maps) and any still-open filp objects.
        let mut blobs = Vec::new();
        {
            // Collecting under a transient registration would need an RCU
            // thread; at drop time we have exclusive access, so walk via
            // the internal iterator instead.
            let rcu = self.inode_cache.rcu().clone();
            let t = rcu.register();
            let g = t.read_lock();
            self.inodes.for_each(&g, |_, meta| blobs.push(meta.selinux));
        }
        for blob in blobs {
            // SAFETY: exclusive access at drop; each blob freed once.
            unsafe { self.selinux_cache.free(blob) };
        }
        let mut table = self.fd_table.lock();
        for file in table.files.drain(..).flatten() {
            // SAFETY: as above.
            unsafe { self.filp_cache.free(file.filp) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbs_mem::PageAllocator;
    use pbs_rcu::{Rcu, RcuConfig};
    use pbs_slub::SlubFactory;
    use prudence::{PrudenceConfig, PrudenceFactory};

    fn prudence_fs() -> (Arc<Rcu>, SimFs) {
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let factory = PrudenceFactory::new(
            PrudenceConfig::new(2),
            Arc::new(PageAllocator::new()),
            Arc::clone(&rcu),
        );
        let fs = SimFs::new(&factory);
        (rcu, fs)
    }

    fn slub_fs() -> (Arc<Rcu>, SimFs) {
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let factory = SlubFactory::new(2, Arc::new(PageAllocator::new()), Arc::clone(&rcu));
        let fs = SimFs::new(&factory);
        (rcu, fs)
    }

    fn lifecycle(rcu: Arc<Rcu>, fs: SimFs) {
        let t = rcu.register();
        let ino = fs.create(1, 10).unwrap();
        assert_eq!(fs.create(1, 10), Err(FsError::Exists));
        let g = t.read_lock();
        assert_eq!(fs.lookup(&g, 1, 10), Some(ino));
        assert_eq!(fs.lookup(&g, 1, 11), None);
        drop(g);
        let fd = fs.open(ino).unwrap();
        fs.append(fd, 2000).unwrap();
        fs.read(fd, 1000).unwrap();
        fs.close(fd).unwrap();
        assert_eq!(fs.close(fd), Err(FsError::BadFd));
        fs.unlink(1, 10).unwrap();
        assert_eq!(fs.unlink(1, 10), Err(FsError::NotFound));
        fs.quiesce();
        for (name, s) in fs.stats() {
            assert_eq!(s.live_objects, 0, "cache {name} leaked: {s:?}");
        }
    }

    #[test]
    fn lifecycle_on_prudence() {
        let (rcu, fs) = prudence_fs();
        lifecycle(rcu, fs);
    }

    #[test]
    fn lifecycle_on_slub() {
        let (rcu, fs) = slub_fs();
        lifecycle(rcu, fs);
    }

    #[test]
    fn deferred_traffic_matches_operations() {
        let (_rcu, fs) = prudence_fs();
        for name in 0..50 {
            let ino = fs.create(7, name).unwrap();
            let fd = fs.open(ino).unwrap();
            fs.append(fd, 512).unwrap();
            fs.close(fd).unwrap();
        }
        for name in 0..50 {
            fs.unlink(7, name).unwrap();
        }
        fs.quiesce();
        let stats: std::collections::HashMap<_, _> = fs.stats().into_iter().collect();
        // close defers filp; unlink defers dentry + inode + selinux.
        assert_eq!(stats["filp"].deferred_frees, 50);
        assert_eq!(stats["dentry"].deferred_frees, 50);
        assert_eq!(stats["ext4_inode"].deferred_frees, 50);
        assert_eq!(stats["selinux"].deferred_frees, 50);
        // Buffer traffic is immediate frees only.
        assert_eq!(stats["fsbuf"].deferred_frees, 0);
        assert!(stats["fsbuf"].frees > 0);
    }

    #[test]
    fn concurrent_postmark_style_churn() {
        let (rcu, fs) = prudence_fs();
        let fs = Arc::new(fs);
        let threads: Vec<_> = (0..4)
            .map(|tid| {
                let fs = Arc::clone(&fs);
                let rcu = Arc::clone(&rcu);
                std::thread::spawn(move || {
                    let t = rcu.register();
                    let dir = tid as u64;
                    for i in 0..500u64 {
                        let ino = fs.create(dir, i).unwrap();
                        let g = t.read_lock();
                        assert_eq!(fs.lookup(&g, dir, i), Some(ino));
                        drop(g);
                        let fd = fs.open(ino).unwrap();
                        fs.append(fd, 256).unwrap();
                        fs.close(fd).unwrap();
                        if i % 2 == 0 {
                            fs.unlink(dir, i).unwrap();
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(fs.file_count(), 4 * 250);
        fs.quiesce();
    }

    #[test]
    fn drop_with_live_files_does_not_leak_pages() {
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let pages = Arc::new(PageAllocator::new());
        {
            let factory =
                PrudenceFactory::new(PrudenceConfig::new(1), Arc::clone(&pages), Arc::clone(&rcu));
            let fs = SimFs::new(&factory);
            let ino = fs.create(1, 1).unwrap();
            let _fd = fs.open(ino).unwrap();
            fs.quiesce();
        }
        assert_eq!(pages.used_bytes(), 0);
    }
}
