//! Low-overhead observability primitives for the Prudence reproduction.
//!
//! The paper's argument is about *time-domain* behaviour — grace-period
//! latency, latent-cache residency, defer→reuse delay — which monotonic
//! counters summed at quiescence cannot show. This crate provides the three
//! primitives the rest of the workspace wires through its existing
//! single-writer statistics discipline:
//!
//! * [`EventRing`] — per-lane, cache-padded ring buffers of fixed-size
//!   binary trace records with drop-oldest overflow and per-record
//!   sequence/checksum validation;
//! * [`LogHistogram`] — power-of-two-bucketed latency histograms with
//!   mergeable serde [`HistogramSnapshot`]s;
//! * [`enabled`]/[`set_enabled`] — a global tracing gate whose disabled
//!   fast path is a single `Relaxed` load plus branch (and a constant
//!   `false` when the `trace` feature is compiled out).
//!
//! The crate is a dependency *leaf*: every layer (`pbs-rcu`,
//! `pbs-alloc-api`, `prudence`, `pbs-slub`) emits into it, and the
//! aggregation/exposition types build on top of it in `pbs-alloc-api` and
//! `pbs-workloads`.

#![warn(missing_docs)]

mod event;
mod hist;
mod ring;
mod shard;
pub mod site;

pub use event::{EventKind, EventSnapshot, KIND_COUNT};
pub use hist::{
    bucket_index, bucket_upper_bound, HistogramSnapshot, LogHistogram, Percentiles, BUCKETS,
};
pub use ring::{EventRing, RingSnapshot};
pub use shard::{ShardGauges, ShardRow, ShardSet};

use std::sync::OnceLock;
use std::time::Instant;

use serde::{Deserialize, Serialize};

#[cfg(feature = "trace")]
static TRACE_ENABLED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(true);

/// Whether tracing is currently enabled.
///
/// This is the *entire* disabled-tracing fast path: one `Relaxed` atomic
/// load and a branch. Every record hook in the workspace checks it before
/// doing any other work. With the `trace` cargo feature disabled the
/// function is a constant `false` and the hooks compile out.
#[inline(always)]
pub fn enabled() -> bool {
    #[cfg(feature = "trace")]
    {
        TRACE_ENABLED.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "trace"))]
    {
        false
    }
}

/// Turns tracing on or off at runtime (no-op without the `trace` feature).
///
/// `Relaxed` is deliberate: hooks racing with the store may record or skip
/// a handful of events around the transition, which is harmless for
/// telemetry and keeps the enabled check off the coherence critical path.
pub fn set_enabled(on: bool) {
    #[cfg(feature = "trace")]
    TRACE_ENABLED.store(on, std::sync::atomic::Ordering::Relaxed);
    #[cfg(not(feature = "trace"))]
    let _ = on;
}

/// Serializes tests that toggle or depend on the global [`enabled`] flag,
/// which is process-wide state shared by cargo's parallel test threads.
#[cfg(test)]
pub(crate) fn flag_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

static CLOCK_EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the first telemetry timestamp taken in this process.
///
/// A monotonic process-relative clock: cheap (`Instant::elapsed`), always
/// increasing, and directly usable as the `ts` field of a chrome://tracing
/// export.
#[inline]
pub fn now_nanos() -> u64 {
    CLOCK_EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// A histogram snapshot labelled with the metric it measures, so sets of
/// histograms survive serde round-trips without map support.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedHistogram {
    /// Metric name, e.g. `"gp_latency_ns"`.
    pub name: String,
    /// The bucketed data.
    pub hist: HistogramSnapshot,
}

/// Everything one instrumented component (an RCU domain, a slab cache)
/// exposes: its histograms plus a snapshot of its event ring.
///
/// Mergeable, so per-cache telemetry from many caches — or snapshots from
/// repeated runs — can be folded into one report.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ComponentTelemetry {
    /// Latency histograms, by metric name.
    pub histograms: Vec<NamedHistogram>,
    /// Decoded, checksum-validated trace events, oldest first.
    pub events: Vec<EventSnapshot>,
    /// Per-event-kind totals (not subject to ring overflow).
    pub event_counts: Vec<(String, u64)>,
    /// Total records ever written to the ring.
    pub events_recorded: u64,
    /// Records lost to drop-oldest overwrite.
    pub events_dropped: u64,
    /// Slots whose checksum failed validation (torn by a racing writer).
    pub events_torn: u64,
}

impl ComponentTelemetry {
    /// Builds a component view from a ring snapshot plus named histograms.
    pub fn new(ring: RingSnapshot, histograms: Vec<NamedHistogram>) -> Self {
        Self {
            histograms,
            events: ring.events,
            event_counts: ring.kind_counts,
            events_recorded: ring.recorded,
            events_dropped: ring.dropped,
            events_torn: ring.torn,
        }
    }

    /// Folds `other` into `self`: histograms merge by name, events
    /// concatenate in timestamp order, counters add.
    pub fn merge(&mut self, other: &ComponentTelemetry) {
        for named in &other.histograms {
            match self.histograms.iter_mut().find(|h| h.name == named.name) {
                Some(mine) => mine.hist.merge(&named.hist),
                None => self.histograms.push(named.clone()),
            }
        }
        self.events.extend(other.events.iter().cloned());
        self.events.sort_by_key(|e| e.t_ns);
        for (kind, count) in &other.event_counts {
            match self.event_counts.iter_mut().find(|(k, _)| k == kind) {
                Some((_, mine)) => *mine += count,
                None => self.event_counts.push((kind.clone(), *count)),
            }
        }
        self.events_recorded += other.events_recorded;
        self.events_dropped += other.events_dropped;
        self.events_torn += other.events_torn;
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| &h.hist)
    }

    /// Total recorded events of one kind (overflow-proof).
    pub fn count_of(&self, kind: EventKind) -> u64 {
        self.event_counts
            .iter()
            .find(|(k, _)| k == kind.name())
            .map_or(0, |(_, c)| *c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn enable_toggle_round_trips() {
        let _guard = flag_guard();
        assert!(enabled(), "trace feature defaults on");
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }

    #[test]
    fn component_merge_folds_histograms_and_counts() {
        let _guard = flag_guard();
        let h = LogHistogram::new();
        h.record(5);
        let mk = || {
            let ring = EventRing::new(1, 8);
            ring.record(0, EventKind::LatentMerge, 7, 1, 2);
            ComponentTelemetry::new(
                ring.snapshot(),
                vec![NamedHistogram {
                    name: "x".into(),
                    hist: h.snapshot(),
                }],
            )
        };
        let mut a = mk();
        let b = mk();
        a.merge(&b);
        assert_eq!(a.events.len(), 2);
        assert_eq!(a.count_of(EventKind::LatentMerge), 2);
        assert_eq!(a.histogram("x").unwrap().count, 2);
        assert_eq!(a.events_recorded, 2);
    }

    #[test]
    fn component_serde_round_trip() {
        let _guard = flag_guard();
        let ring = EventRing::new(2, 8);
        ring.record(1, EventKind::GpComplete, 0, 10, 0);
        let t = ComponentTelemetry::new(ring.snapshot(), Vec::new());
        let json = serde_json::to_string(&t).unwrap();
        let back: ComponentTelemetry = serde_json::from_str(&json).unwrap();
        assert_eq!(back.events, t.events);
        assert_eq!(back.events_recorded, 1);
    }
}
