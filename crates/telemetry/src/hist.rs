//! Log-bucketed latency histograms with mergeable snapshots.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Bucket count: one bucket per possible significant-bit count of a `u64`
/// (0 through 64).
pub const BUCKETS: usize = 65;

/// The bucket a value lands in: its number of significant bits, so bucket
/// `k` (for `k >= 1`) covers `[2^(k-1), 2^k - 1]` and bucket 0 holds only
/// zero.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket, for exposition (`le` labels).
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= 64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A power-of-two-bucketed histogram of `u64` samples (latencies in
/// nanoseconds, throughout this workspace).
///
/// Recording is a gated `Relaxed` `fetch_add` pair — histograms are only
/// touched off the allocation fast path (contended slot waits, grace-period
/// waits, latent merges), where an uncontended RMW is noise. When tracing
/// is [disabled](crate::enabled), `record` is the single load + branch.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample (no-op while tracing is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A point-in-time copy. Concurrent recording may skew `sum` relative
    /// to the bucket counts by in-flight samples; `count` is always the
    /// exact sum of the snapshot's buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A frozen, mergeable, serializable view of a [`LogHistogram`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total samples (sum of `buckets`).
    pub count: u64,
    /// Sum of all sample values.
    pub sum: u64,
    /// Per-bucket sample counts, [`BUCKETS`] entries.
    pub buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            buckets: vec![0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Adds `other` into `self`, bucket-wise.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Mean sample value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`), or `None` when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper_bound(i));
            }
        }
        Some(bucket_upper_bound(BUCKETS - 1))
    }

    /// The standard tail report: p50/p99/p99.9 upper bounds plus mean and
    /// count, or `None` when empty.
    pub fn percentiles(&self) -> Option<Percentiles> {
        Some(Percentiles {
            p50: self.quantile_upper_bound(0.5)?,
            p99: self.quantile_upper_bound(0.99)?,
            p999: self.quantile_upper_bound(0.999)?,
            mean: self.mean(),
            count: self.count,
        })
    }
}

/// p50/p99/p99.9 upper bounds of one histogram — the tail triple every
/// server report quotes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Median upper bound.
    pub p50: u64,
    /// 99th-percentile upper bound.
    pub p99: u64,
    /// 99.9th-percentile upper bound.
    pub p999: u64,
    /// Mean sample value.
    pub mean: f64,
    /// Samples recorded.
    pub count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_values_land_in_the_right_bucket() {
        // Property at every power-of-two boundary: 2^k - 1 is the last
        // value of bucket k, 2^k the first value of bucket k + 1.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        for k in 1..64 {
            let pow = 1u64 << k;
            assert_eq!(bucket_index(pow - 1), k, "2^{k} - 1");
            assert_eq!(bucket_index(pow), k + 1, "2^{k}");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn record_fills_expected_buckets() {
        let _guard = crate::flag_guard();
        let h = LogHistogram::new();
        for v in [0u64, 1, 2, 3, 4, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[3], 1); // 4
        assert_eq!(s.buckets[64], 1); // u64::MAX
        assert_eq!(s.sum, 10u64.wrapping_add(u64::MAX));
    }

    #[test]
    fn merged_snapshot_equals_sum_of_parts() {
        let _guard = crate::flag_guard();
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        for v in 0..200u64 {
            a.record(v * 31);
            b.record(v * 17 + 5);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());

        let reference = LogHistogram::new();
        for v in 0..200u64 {
            reference.record(v * 31);
            reference.record(v * 17 + 5);
        }
        assert_eq!(merged, reference.snapshot());
        assert_eq!(merged.count, 400);
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _guard = crate::flag_guard();
        let h = LogHistogram::new();
        crate::set_enabled(false);
        h.record(42);
        crate::set_enabled(true);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn quantiles_and_mean() {
        let _guard = crate::flag_guard();
        let h = LogHistogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.quantile_upper_bound(0.5), Some(15)); // bucket [8, 15]
        assert_eq!(s.quantile_upper_bound(1.0), Some((1 << 20) - 1));
        assert!(s.mean() > 10.0);
        assert_eq!(HistogramSnapshot::default().quantile_upper_bound(0.5), None);
    }

    #[test]
    fn upper_bounds_cover_the_domain() {
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(4), 15);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn snapshot_serde_round_trip() {
        let _guard = crate::flag_guard();
        let h = LogHistogram::new();
        h.record(7);
        h.record(1 << 40);
        let s = h.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
