//! Per-lane, cache-padded trace-event ring buffers.
//!
//! The write side mirrors the workspace's sharded-statistics discipline:
//! each lane belongs to one writer at a time (the holder of the per-CPU
//! slot lock, or the node lock for lane 0), so every store — the head
//! cursor, the kind counters, the record words — is a plain `Relaxed`
//! load/store with no read-modify-write and no shared cache lines between
//! lanes. Overflow is drop-oldest: the ring wraps and the overwritten
//! records are accounted by a drop counter derived from the head.
//!
//! Because telemetry must be robust to misuse, the format does not *trust*
//! the single-writer contract: every record carries its claim sequence and
//! a checksum over all of its words. A reader (or a racing writer that
//! violated the contract) can therefore never surface a torn record — the
//! snapshot recomputes each checksum and discards mismatches, counting
//! them separately.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crossbeam::utils::CachePadded;
use serde::{Deserialize, Serialize};

use crate::event::{EventKind, EventSnapshot, KIND_COUNT};

/// Words per on-ring record: seq, timestamp, kind/lane/src, a, b,
/// checksum.
const WORDS: usize = 6;

struct Slot([AtomicU64; WORDS]);

struct Lane {
    /// Next sequence number for this lane; plain load/store, single
    /// writer.
    head: AtomicU64,
    /// Total events of each kind recorded on this lane; unlike the ring
    /// slots these are never overwritten, so kind totals survive
    /// overflow.
    counts: [AtomicU64; KIND_COUNT],
    slots: Box<[Slot]>,
}

impl Lane {
    fn new(capacity: usize) -> Self {
        Self {
            head: AtomicU64::new(0),
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            slots: (0..capacity)
                .map(|_| Slot(std::array::from_fn(|_| AtomicU64::new(0))))
                .collect(),
        }
    }
}

/// 64-bit mix over a record's payload words; a torn read (words from two
/// different writes) fails to reproduce it with overwhelming probability.
fn checksum(words: &[u64; WORDS - 1]) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    for &w in words {
        h ^= w;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
    }
    h
}

/// A fixed-capacity, multi-lane trace ring (see the module docs for the
/// write discipline).
#[derive(Debug)]
pub struct EventRing {
    lanes: Box<[CachePadded<Lane>]>,
    mask: u64,
    next_lane_hint: AtomicUsize,
}

impl std::fmt::Debug for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lane")
            .field("head", &self.head.load(Ordering::Relaxed))
            .field("capacity", &self.slots.len())
            .finish()
    }
}

impl EventRing {
    /// A ring with `lanes` independent lanes of `capacity_per_lane`
    /// records each (rounded up to a power of two, minimum 8).
    pub fn new(lanes: usize, capacity_per_lane: usize) -> Self {
        let capacity = capacity_per_lane.max(8).next_power_of_two();
        Self {
            lanes: (0..lanes.max(1)).map(|_| CachePadded::new(Lane::new(capacity))).collect(),
            mask: capacity as u64 - 1,
            next_lane_hint: AtomicUsize::new(0),
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Records one event on `lane` (wrapped into range). No-op while
    /// tracing is [disabled](crate::enabled).
    #[inline]
    pub fn record(&self, lane: usize, kind: EventKind, src: u32, a: u64, b: u64) {
        if !crate::enabled() {
            return;
        }
        self.record_at(lane, crate::now_nanos(), kind, src, a, b);
    }

    /// Like [`record`](Self::record) but stamps the caller-supplied
    /// timestamp, for paths that already read the clock (the clock read
    /// dominates a record's cost). Still a no-op while tracing is
    /// disabled.
    #[inline]
    pub fn record_at(&self, lane: usize, t_ns: u64, kind: EventKind, src: u32, a: u64, b: u64) {
        if !crate::enabled() {
            return;
        }
        let lane_idx = lane % self.lanes.len();
        let lane = &*self.lanes[lane_idx];
        // The kind totals and the head claim must be RMWs, not
        // load-then-store: `record_thread` maps arbitrary threads onto a
        // bounded lane set, so concurrent writers on one lane are a
        // tolerated (checksum-guarded) mode — a plain load+store pair
        // here loses increments under exactly that collision, which made
        // the overflow-proof kind totals quietly inexact.
        lane.counts[kind as usize].fetch_add(1, Ordering::Relaxed);
        let claim = lane.head.fetch_add(1, Ordering::Relaxed);
        let words = [
            claim + 1, // +1 so an untouched (all-zero) slot is recognizable
            t_ns,
            u64::from(kind as u16) | (lane_idx as u64 & 0xFFFF) << 16 | u64::from(src) << 32,
            a,
            b,
        ];
        let slot = &lane.slots[(claim & self.mask) as usize];
        for (cell, &word) in slot.0.iter().zip(&words) {
            cell.store(word, Ordering::Relaxed);
        }
        slot.0[WORDS - 1].store(checksum(&words), Ordering::Relaxed);
    }

    /// Records on a lane derived from the calling thread, for components
    /// (like the RCU domain) whose writers are not bound to a CPU slot.
    /// Distinct threads spread across lanes; collisions are tolerated
    /// because torn records are checksum-dropped.
    #[inline]
    pub fn record_thread(&self, kind: EventKind, src: u32, a: u64, b: u64) {
        self.record(self.thread_lane(), kind, src, a, b);
    }

    /// The lane [`record_thread`](Self::record_thread) would use on this
    /// thread.
    pub fn thread_lane(&self) -> usize {
        use std::cell::Cell;
        thread_local! {
            static HINT: Cell<usize> = const { Cell::new(usize::MAX) };
        }
        let hint = HINT.with(|h| {
            if h.get() == usize::MAX {
                h.set(self.next_lane_hint.fetch_add(1, Ordering::Relaxed));
            }
            h.get()
        });
        hint % self.lanes.len()
    }

    /// Decodes every live, checksum-valid record into timestamp order.
    pub fn snapshot(&self) -> RingSnapshot {
        let capacity = self.mask + 1;
        let mut events = Vec::new();
        let mut recorded = 0u64;
        let mut dropped = 0u64;
        let mut torn = 0u64;
        let mut kind_totals = [0u64; KIND_COUNT];
        for lane in self.lanes.iter() {
            let head = lane.head.load(Ordering::Relaxed);
            recorded += head;
            dropped += head.saturating_sub(capacity);
            for (kind, total) in lane.counts.iter().zip(&mut kind_totals) {
                *total += kind.load(Ordering::Relaxed);
            }
            for slot in lane.slots.iter() {
                let mut words = [0u64; WORDS];
                for (word, cell) in words.iter_mut().zip(&slot.0) {
                    *word = cell.load(Ordering::Relaxed);
                }
                if words[0] == 0 {
                    continue; // never written
                }
                let payload: [u64; WORDS - 1] = words[..WORDS - 1].try_into().expect("size");
                if checksum(&payload) != words[WORDS - 1] {
                    torn += 1;
                    continue;
                }
                let Some(kind) = EventKind::from_u16(words[2] as u16) else {
                    torn += 1;
                    continue;
                };
                events.push(EventSnapshot {
                    seq: words[0] - 1,
                    t_ns: words[1],
                    kind: kind as u16,
                    lane: (words[2] >> 16) as u16,
                    src: (words[2] >> 32) as u32,
                    a: words[3],
                    b: words[4],
                });
            }
        }
        events.sort_by_key(|e| e.t_ns);
        RingSnapshot {
            events,
            recorded,
            dropped,
            torn,
            kind_counts: EventKind::ALL
                .iter()
                .zip(kind_totals)
                .map(|(kind, total)| (kind.name().to_owned(), total))
                .collect(),
        }
    }
}

/// A decoded, validated point-in-time view of an [`EventRing`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RingSnapshot {
    /// Valid records, oldest timestamp first.
    pub events: Vec<EventSnapshot>,
    /// Total records ever written (sum of lane heads).
    pub recorded: u64,
    /// Records overwritten by drop-oldest wrap-around.
    pub dropped: u64,
    /// Slots that failed checksum or kind validation.
    pub torn: u64,
    /// Overflow-proof per-kind totals, one entry per [`EventKind`].
    pub kind_counts: Vec<(String, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_in_order() {
        let _guard = crate::flag_guard();
        let ring = EventRing::new(2, 16);
        ring.record(0, EventKind::GpBegin, 9, 1, 2);
        ring.record(1, EventKind::LatentMerge, 9, 3, 4);
        let snap = ring.snapshot();
        assert_eq!(snap.recorded, 2);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.torn, 0);
        assert_eq!(snap.events.len(), 2);
        assert!(snap.events[0].t_ns <= snap.events[1].t_ns);
        let merge = snap
            .events
            .iter()
            .find(|e| e.event_kind() == EventKind::LatentMerge)
            .unwrap();
        assert_eq!((merge.lane, merge.src, merge.a, merge.b), (1, 9, 3, 4));
        assert_eq!(
            snap.kind_counts
                .iter()
                .find(|(k, _)| k == "latent_merge")
                .unwrap()
                .1,
            1
        );
    }

    #[test]
    fn overflow_drops_oldest_and_counts_drops() {
        let _guard = crate::flag_guard();
        let ring = EventRing::new(1, 8);
        for i in 0..20 {
            ring.record(0, EventKind::LatentStamp, 0, i, 0);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.recorded, 20);
        assert_eq!(snap.dropped, 12);
        assert_eq!(snap.events.len(), 8);
        // The surviving records are exactly the 12..20 tail.
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
        // Kind totals are overflow-proof.
        assert_eq!(snap.kind_counts.iter().find(|(k, _)| k == "latent_stamp").unwrap().1, 20);
    }

    #[test]
    fn lane_indices_wrap() {
        let _guard = crate::flag_guard();
        let ring = EventRing::new(2, 8);
        ring.record(7, EventKind::OomDefer, 0, 0, 0); // lane 7 % 2 == 1
        let snap = ring.snapshot();
        assert_eq!(snap.events[0].lane, 1);
    }

    #[test]
    fn disabled_tracing_writes_nothing() {
        let _guard = crate::flag_guard();
        let ring = EventRing::new(1, 8);
        crate::set_enabled(false);
        ring.record(0, EventKind::GpBegin, 0, 0, 0);
        crate::set_enabled(true);
        assert_eq!(ring.snapshot().recorded, 0);
    }

    #[test]
    fn thread_lanes_spread_across_threads() {
        let ring = std::sync::Arc::new(EventRing::new(4, 8));
        let lanes: Vec<usize> = (0..4)
            .map(|_| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || ring.thread_lane())
            })
            .map(|h| h.join().unwrap())
            .collect();
        for lane in lanes {
            assert!(lane < 4);
        }
    }

    /// Satellite stress test: hammer one lane from many threads —
    /// deliberately violating the single-writer contract — and verify the
    /// snapshot never surfaces a corrupt record. Each writer maintains
    /// `b == a * PHI` inside every record; a torn mix of two records
    /// breaks the checksum and must be dropped, never decoded.
    #[test]
    fn concurrent_writers_never_surface_corrupt_records() {
        let _guard = crate::flag_guard();
        const PHI: u64 = 0x9E37_79B9_7F4A_7C15;
        let ring = std::sync::Arc::new(EventRing::new(1, 64));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let ring = std::sync::Arc::clone(&ring);
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let a = (t as u64) << 32 | i;
                        ring.record(0, EventKind::LatentStamp, t, a, a.wrapping_mul(PHI));
                        i += 1;
                    }
                })
            })
            .collect();
        // Snapshot concurrently with the writers: reads race with stores,
        // so torn slots are expected — but every *surfaced* record must be
        // internally consistent.
        let mut total_checked = 0usize;
        for _ in 0..200 {
            let snap = ring.snapshot();
            for event in &snap.events {
                assert_eq!(event.event_kind(), EventKind::LatentStamp);
                assert_eq!(event.b, event.a.wrapping_mul(PHI), "corrupt record surfaced");
                assert_eq!(event.lane, 0);
            }
            total_checked += snap.events.len();
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        assert!(total_checked > 0, "stress test observed no records");
    }

    /// With the contract honored (one thread per lane) nothing tears and
    /// nothing is lost short of capacity.
    #[test]
    fn per_lane_writers_lose_nothing() {
        let _guard = crate::flag_guard();
        let ring = std::sync::Arc::new(EventRing::new(4, 256));
        let handles: Vec<_> = (0..4)
            .map(|lane| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        ring.record(lane, EventKind::DeferredFree, lane as u32, i, 0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = ring.snapshot();
        assert_eq!(snap.recorded, 400);
        assert_eq!(snap.torn, 0);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events.len(), 400);
    }

    /// Regression: the per-kind totals and the head claim are RMW
    /// increments. Hammering one lane from many threads (the tolerated
    /// `record_thread` collision mode) must account *every* record
    /// exactly — the old load-then-store pair lost increments under
    /// contention, so `recorded` and the kind totals drifted below the
    /// true event count.
    #[test]
    fn colliding_writers_keep_counts_exact() {
        let _guard = crate::flag_guard();
        const WRITERS: usize = 8;
        const PER_WRITER: u64 = 20_000;
        let ring = std::sync::Arc::new(EventRing::new(1, 8));
        let start = std::sync::Arc::new(std::sync::Barrier::new(WRITERS));
        let handles: Vec<_> = (0..WRITERS)
            .map(|t| {
                let ring = std::sync::Arc::clone(&ring);
                let start = std::sync::Arc::clone(&start);
                std::thread::spawn(move || {
                    start.wait();
                    for i in 0..PER_WRITER {
                        // Alternate kinds so per-kind totals are checked
                        // under contention too, not just the head.
                        let kind = if i % 2 == 0 {
                            EventKind::GpBegin
                        } else {
                            EventKind::DeferredFree
                        };
                        ring.record(0, kind, t as u32, i, 0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = WRITERS as u64 * PER_WRITER;
        let snap = ring.snapshot();
        assert_eq!(snap.recorded, total, "head claims lost under contention");
        let kind_total = |name: &str| {
            snap.kind_counts.iter().find(|(k, _)| k == name).unwrap().1
        };
        assert_eq!(kind_total("gp_begin"), total / 2);
        assert_eq!(kind_total("deferred_free"), total / 2);
    }
}
