//! Per-call-site attribution of deferred frees.
//!
//! Every `free_deferred`/`domain.defer` entry point captures its caller's
//! [`std::panic::Location`] (via `#[track_caller]`), interns it into a
//! compact [`SiteId`], and stamps the object's address with
//! `{site, backend, bytes, defer time}`. When the object is finally
//! reclaimed — by an epoch merge, a hazard scan, a batch release or an RCU
//! callback — [`note_reclaimed`] removes the stamp, credits the site's
//! reclaimed counters, and charges the object's age to the per-backend
//! `garbage_age_ns` histogram. The difference `deferred − reclaimed` is the
//! site's *outstanding* garbage, the quantity the doctor ranks sites by.
//!
//! Cost discipline mirrors the rest of the crate:
//!
//! * everything is gated on [`enabled`](crate::enabled) — one `Relaxed`
//!   load and a branch when tracing is off;
//! * interning hits a lock-free direct-mapped pointer cache after the
//!   first registration of a site (the slow path takes a mutex once);
//! * per-site counters are `Relaxed` per-lane stripes (threads spread over
//!   [`LANES`] cache-padded lanes), summed only at snapshot time;
//! * [`note_reclaimed`] with no stamps outstanding anywhere is a single
//!   `Relaxed` load, so reclaim paths call it unconditionally and the
//!   stamp table always drains even if tracing is switched off mid-run.
//!
//! The registry, counters and stamp table are process-global (like the
//! [`enabled`](crate::enabled) flag itself): attribution spans every
//! domain and cache in the process, and tests that assert exact balances
//! run in their own binaries against sites they exclusively own.

use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crossbeam::utils::CachePadded;
use serde::{Deserialize, Serialize};

use crate::hist::LogHistogram;
use crate::NamedHistogram;

/// Maximum distinct call sites tracked; later registrations fold into the
/// overflow site (id 0) and are counted in
/// [`SiteReport::dropped_sites`].
pub const MAX_SITES: usize = 256;

/// Counter stripes per site; threads are spread across lanes so concurrent
/// defers from one site don't share a cacheline.
pub const LANES: usize = 8;

/// Reclamation backends distinguished by the age histograms, in
/// `PBS_RECLAIM` label order: `epoch`, `hp`, `hyaline`.
pub const BACKENDS: usize = 3;

/// Backend index for the epoch (call_rcu) domain.
pub const BACKEND_EPOCH: u8 = 0;
/// Backend index for the hazard-pointer domain.
pub const BACKEND_HP: u8 = 1;
/// Backend index for the Hyaline-style batch domain.
pub const BACKEND_HYALINE: u8 = 2;

/// `PBS_RECLAIM`-style label of a backend index.
pub fn backend_label(backend: u8) -> &'static str {
    match backend {
        BACKEND_HP => "hp",
        BACKEND_HYALINE => "hyaline",
        _ => "epoch",
    }
}

/// Backend index for a `PBS_RECLAIM`-style label (unknown labels map to
/// the epoch index).
pub fn backend_index(label: &str) -> u8 {
    match label {
        "hp" => BACKEND_HP,
        "hyaline" => BACKEND_HYALINE,
        _ => BACKEND_EPOCH,
    }
}

/// A compact interned id of one `#[track_caller]` call site.
///
/// Id 0 is the overflow/unknown site; real sites start at 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SiteId(u32);

impl SiteId {
    /// The overflow/unknown site.
    pub const UNKNOWN: SiteId = SiteId(0);

    /// The raw interned index.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// One counter stripe: `Relaxed` bumps only, summed at snapshot time.
#[derive(Default)]
struct Lane {
    deferred: AtomicU64,
    deferred_bytes: AtomicU64,
    reclaimed: AtomicU64,
    reclaimed_bytes: AtomicU64,
}

/// Canonical site registry: dedups by `(file, line, column)` so duplicate
/// `Location` instances (e.g. across codegen units) intern to one id.
#[derive(Default)]
struct Registry {
    by_loc: HashMap<(&'static str, u32, u32), u32>,
    labels: Vec<String>,
    dropped: u64,
}

/// Direct-mapped pointer→id cache entry; `id` holds `interned + 1` so zero
/// means empty. Publication order (id before key, key `Release`) pairs
/// with the `Acquire` key load in [`intern`].
struct CacheEntry {
    key: AtomicUsize,
    id: AtomicU32,
}

const CACHE_SLOTS: usize = 1024;

struct Globals {
    registry: Mutex<Registry>,
    lanes: Box<[CachePadded<Lane>]>, // MAX_SITES × LANES, site-major
    cache: Box<[CacheEntry]>,
    stamps: Box<[Mutex<HashMap<usize, Stamp>>]>,
    age: [LogHistogram; BACKENDS],
    outstanding: AtomicU64,
    lost_stamps: AtomicU64,
}

#[derive(Clone, Copy)]
struct Stamp {
    site: u32,
    backend: u8,
    bytes: u32,
    t_ns: u64,
}

const STAMP_SHARDS: usize = 64;

fn globals() -> &'static Globals {
    static GLOBALS: OnceLock<Globals> = OnceLock::new();
    GLOBALS.get_or_init(|| {
        let mut registry = Registry::default();
        registry.labels.push("<unknown>".to_string());
        Globals {
            registry: Mutex::new(registry),
            lanes: (0..MAX_SITES * LANES)
                .map(|_| CachePadded::new(Lane::default()))
                .collect(),
            cache: (0..CACHE_SLOTS)
                .map(|_| CacheEntry {
                    key: AtomicUsize::new(0),
                    id: AtomicU32::new(0),
                })
                .collect(),
            stamps: (0..STAMP_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            age: std::array::from_fn(|_| LogHistogram::new()),
            outstanding: AtomicU64::new(0),
            lost_stamps: AtomicU64::new(0),
        }
    })
}

/// This thread's counter stripe, assigned round-robin on first use.
fn lane_index() -> usize {
    thread_local! {
        static LANE: usize = {
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            NEXT.fetch_add(1, Ordering::Relaxed) % LANES
        };
    }
    LANE.with(|l| *l)
}

fn cache_slot(key: usize) -> usize {
    // Fibonacci hash of the pointer (low bits are alignment zeros).
    (key >> 4).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (usize::BITS - 10)
}

/// Interns a call-site location into a compact [`SiteId`].
///
/// Fast path after first registration: one hashed `Acquire` load against
/// the pointer cache. Distinct `Location` instances for the same
/// `file:line:column` resolve to the same id through the canonical
/// registry.
#[inline]
pub fn intern(loc: &'static Location<'static>) -> SiteId {
    let g = globals();
    let key = loc as *const Location<'static> as usize;
    let entry = &g.cache[cache_slot(key)];
    if entry.key.load(Ordering::Acquire) == key {
        return SiteId(entry.id.load(Ordering::Relaxed).saturating_sub(1));
    }
    intern_slow(g, loc, key, entry)
}

#[cold]
fn intern_slow(
    g: &'static Globals,
    loc: &'static Location<'static>,
    key: usize,
    entry: &CacheEntry,
) -> SiteId {
    let mut reg = g.registry.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let file: &'static str = loc.file();
    let id = match reg.by_loc.get(&(file, loc.line(), loc.column())) {
        Some(&id) => id,
        None if reg.labels.len() < MAX_SITES => {
            let id = reg.labels.len() as u32;
            reg.by_loc.insert((file, loc.line(), loc.column()), id);
            reg.labels.push(format!("{}:{}:{}", loc.file(), loc.line(), loc.column()));
            id
        }
        None => {
            reg.dropped += 1;
            0
        }
    };
    drop(reg);
    if id != 0 {
        // Publish id before key so a racing fast-path reader that sees the
        // key always reads a valid id. Losing the slot to a colliding site
        // is fine — that site just keeps taking the slow path.
        entry.id.store(id + 1, Ordering::Relaxed);
        entry.key.store(key, Ordering::Release);
    }
    SiteId(id)
}

/// Records a deferred free: credits the site's deferred counters and
/// stamps `addr` with the site, backend and defer time so the matching
/// [`note_reclaimed`] can attribute the reclaim.
///
/// Call only when [`enabled`](crate::enabled); the caller already holds
/// the object exclusively so a duplicate stamp for `addr` means the
/// previous owner leaked (cache torn down without reclaiming) — the old
/// stamp is dropped and counted in [`SiteReport::lost_stamps`].
pub fn note_deferred(addr: usize, site: SiteId, bytes: usize, backend: u8) {
    let g = globals();
    let lane = &g.lanes[site.0 as usize * LANES + lane_index()];
    lane.deferred.fetch_add(1, Ordering::Relaxed);
    lane.deferred_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    let stamp = Stamp {
        site: site.0,
        backend: backend.min(BACKENDS as u8 - 1),
        bytes: bytes.min(u32::MAX as usize) as u32,
        t_ns: crate::now_nanos(),
    };
    let prev = g.stamps[addr % STAMP_SHARDS]
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert(addr, stamp);
    if prev.is_some() {
        g.lost_stamps.fetch_add(1, Ordering::Relaxed);
    } else {
        g.outstanding.fetch_add(1, Ordering::Relaxed);
    }
}

/// Tags an address on behalf of a direct domain user when no allocator
/// already stamped it (allocator-layer stamps carry the user's call site
/// and must win). Used by `ReclamationDomain::defer` implementations.
pub fn note_deferred_if_untracked(addr: usize, site: SiteId, backend: u8) {
    let g = globals();
    {
        let shard = g.stamps[addr % STAMP_SHARDS]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if shard.contains_key(&addr) {
            return;
        }
    }
    note_deferred(addr, site, 0, backend);
}

/// Records that `addr` was reclaimed (became reusable). Safe to call
/// unconditionally from every reclaim path: with no stamps outstanding
/// anywhere this is a single `Relaxed` load, and unstamped addresses
/// (deferred while tracing was off) are ignored.
#[inline]
pub fn note_reclaimed(addr: usize) {
    let g = globals();
    if g.outstanding.load(Ordering::Relaxed) == 0 {
        return;
    }
    note_reclaimed_slow(g, addr);
}

#[cold]
fn note_reclaimed_slow(g: &'static Globals, addr: usize) {
    let stamp = g.stamps[addr % STAMP_SHARDS]
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .remove(&addr);
    let Some(stamp) = stamp else { return };
    g.outstanding.fetch_sub(1, Ordering::Relaxed);
    let lane = &g.lanes[stamp.site as usize * LANES + lane_index()];
    lane.reclaimed.fetch_add(1, Ordering::Relaxed);
    lane.reclaimed_bytes.fetch_add(stamp.bytes as u64, Ordering::Relaxed);
    let age = crate::now_nanos().saturating_sub(stamp.t_ns);
    g.age[stamp.backend as usize].record(age);
}

/// Aggregated counters of one call site.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteStat {
    /// Interned site index ([`SiteId::index`]).
    pub site: u32,
    /// `file:line:column` of the call site (`<unknown>` for overflow).
    pub label: String,
    /// Objects deferred from this site.
    pub deferred: u64,
    /// Objects from this site reclaimed into a reusable state.
    pub reclaimed: u64,
    /// `deferred − reclaimed`: objects still held as garbage.
    pub outstanding: u64,
    /// Bytes deferred from this site.
    pub deferred_bytes: u64,
    /// Bytes reclaimed.
    pub reclaimed_bytes: u64,
    /// Bytes still outstanding.
    pub outstanding_bytes: u64,
}

/// Snapshot of the whole attribution subsystem, embedded in the unified
/// telemetry snapshot and rendered by the doctor.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SiteReport {
    /// Per-site counters, every site with any recorded activity, sorted
    /// by outstanding bytes descending.
    pub sites: Vec<SiteStat>,
    /// Stamped objects currently outstanding across all sites.
    pub outstanding_total: u64,
    /// Age in nanoseconds of the oldest outstanding stamped object
    /// (0 when none are outstanding).
    pub oldest_outstanding_ns: u64,
    /// `garbage_age_ns` histograms, one per backend (named
    /// `garbage_age_ns` with the backend label suffix).
    pub age: Vec<NamedHistogram>,
    /// Site registrations dropped because [`MAX_SITES`] was exceeded.
    pub dropped_sites: u64,
    /// Stamps overwritten by address reuse (owner torn down without
    /// reclaiming — see [`note_deferred`]).
    pub lost_stamps: u64,
}

impl SiteReport {
    /// Looks up a site's stats by label substring (tests, doctor).
    pub fn site_containing(&self, fragment: &str) -> Option<&SiteStat> {
        self.sites.iter().find(|s| s.label.contains(fragment))
    }

    /// Folds another report into this one: sites merge by label (counters
    /// add), gauges take the maximum, histograms merge bucket-wise. Two
    /// captures of the *same* process should not be merged — that would
    /// double-count; this is for folding reports from separate runs.
    pub fn merge(&mut self, other: &SiteReport) {
        for site in &other.sites {
            match self.sites.iter_mut().find(|s| s.label == site.label) {
                Some(mine) => {
                    mine.deferred += site.deferred;
                    mine.reclaimed += site.reclaimed;
                    mine.outstanding += site.outstanding;
                    mine.deferred_bytes += site.deferred_bytes;
                    mine.reclaimed_bytes += site.reclaimed_bytes;
                    mine.outstanding_bytes += site.outstanding_bytes;
                }
                None => self.sites.push(site.clone()),
            }
        }
        self.sites.sort_by(|a, b| {
            b.outstanding_bytes
                .cmp(&a.outstanding_bytes)
                .then(b.outstanding.cmp(&a.outstanding))
                .then(a.site.cmp(&b.site))
        });
        self.outstanding_total += other.outstanding_total;
        self.oldest_outstanding_ns = self.oldest_outstanding_ns.max(other.oldest_outstanding_ns);
        for named in &other.age {
            match self.age.iter_mut().find(|h| h.name == named.name) {
                Some(mine) => mine.hist.merge(&named.hist),
                None => self.age.push(named.clone()),
            }
        }
        self.dropped_sites += other.dropped_sites;
        self.lost_stamps += other.lost_stamps;
    }
}

/// Captures a point-in-time [`SiteReport`].
pub fn report() -> SiteReport {
    let g = globals();
    let (labels, dropped) = {
        let reg = g.registry.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        (reg.labels.clone(), reg.dropped)
    };
    let mut sites = Vec::new();
    for (id, label) in labels.iter().enumerate() {
        let mut s = SiteStat {
            site: id as u32,
            label: label.clone(),
            ..Default::default()
        };
        for lane in 0..LANES {
            let l = &g.lanes[id * LANES + lane];
            s.deferred += l.deferred.load(Ordering::Relaxed);
            s.deferred_bytes += l.deferred_bytes.load(Ordering::Relaxed);
            s.reclaimed += l.reclaimed.load(Ordering::Relaxed);
            s.reclaimed_bytes += l.reclaimed_bytes.load(Ordering::Relaxed);
        }
        s.outstanding = s.deferred.saturating_sub(s.reclaimed);
        s.outstanding_bytes = s.deferred_bytes.saturating_sub(s.reclaimed_bytes);
        if s.deferred != 0 || s.reclaimed != 0 {
            sites.push(s);
        }
    }
    sites.sort_by(|a, b| {
        b.outstanding_bytes
            .cmp(&a.outstanding_bytes)
            .then(b.outstanding.cmp(&a.outstanding))
            .then(a.site.cmp(&b.site))
    });
    let now = crate::now_nanos();
    let mut oldest = 0u64;
    for shard in g.stamps.iter() {
        let shard = shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for stamp in shard.values() {
            oldest = oldest.max(now.saturating_sub(stamp.t_ns));
        }
    }
    SiteReport {
        sites,
        outstanding_total: g.outstanding.load(Ordering::Relaxed),
        oldest_outstanding_ns: oldest,
        age: (0..BACKENDS)
            .map(|b| NamedHistogram {
                name: format!("garbage_age_ns_{}", backend_label(b as u8)),
                hist: g.age[b].snapshot(),
            })
            .collect(),
        dropped_sites: dropped,
        lost_stamps: g.lost_stamps.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[track_caller]
    fn here() -> &'static Location<'static> {
        Location::caller()
    }

    #[test]
    fn interning_dedups_and_is_stable() {
        let loc = here();
        let a = intern(loc);
        let b = intern(loc);
        assert_eq!(a, b);
        assert_ne!(a, SiteId::UNKNOWN);
        let other = intern(here());
        assert_ne!(a, other, "distinct lines intern to distinct ids");
    }

    #[test]
    fn concurrent_first_registration_agrees() {
        // All threads intern the *same* location concurrently; every
        // thread must observe the same id (first registration races
        // through the slow path, later ones may hit the pointer cache).
        let loc = here();
        let ids: Vec<SiteId> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(move || (0..100).map(|_| intern(loc)).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let first = ids[0];
        assert!(ids.iter().all(|&id| id == first));
    }

    #[test]
    fn defer_reclaim_balances_and_ages() {
        let _guard = crate::flag_guard();
        crate::set_enabled(true);
        let site = intern(here());
        let base = 0xdead_0000usize;
        for i in 0..10 {
            note_deferred(base + i * 64, site, 64, BACKEND_HP);
        }
        let mid = report();
        let stat = mid.sites.iter().find(|s| s.site == site.index()).unwrap();
        assert_eq!(stat.deferred, 10);
        assert_eq!(stat.outstanding, 10);
        assert_eq!(stat.outstanding_bytes, 640);
        assert!(mid.outstanding_total >= 10);
        assert!(mid.oldest_outstanding_ns > 0);

        for i in 0..10 {
            note_reclaimed(base + i * 64);
        }
        let done = report();
        let stat = done.sites.iter().find(|s| s.site == site.index()).unwrap();
        assert_eq!(stat.reclaimed, 10);
        assert_eq!(stat.outstanding, 0);
        assert_eq!(stat.outstanding_bytes, 0);
        let hp_age = done
            .age
            .iter()
            .find(|h| h.name == "garbage_age_ns_hp")
            .unwrap();
        assert!(hp_age.hist.count >= 10);
    }

    #[test]
    fn unstamped_reclaims_are_ignored() {
        let _guard = crate::flag_guard();
        crate::set_enabled(true);
        let before = report();
        note_reclaimed(0xfeed_beef);
        let after = report();
        assert_eq!(before.outstanding_total, after.outstanding_total);
    }

    #[test]
    fn domain_stamp_defers_to_allocator_stamp() {
        let _guard = crate::flag_guard();
        crate::set_enabled(true);
        let alloc_site = intern(here());
        let domain_site = intern(here());
        let addr = 0xabc0_0000usize;
        note_deferred(addr, alloc_site, 32, BACKEND_HYALINE);
        note_deferred_if_untracked(addr, domain_site, BACKEND_HYALINE);
        note_reclaimed(addr);
        let rep = report();
        let alloc_stat = rep.sites.iter().find(|s| s.site == alloc_site.index()).unwrap();
        assert_eq!(alloc_stat.reclaimed, 1, "allocator site owns the stamp");
        assert!(
            !rep.sites.iter().any(|s| s.site == domain_site.index()),
            "domain-side tag did not double-count"
        );
    }

    #[test]
    fn backend_labels_round_trip() {
        for b in 0..BACKENDS as u8 {
            assert_eq!(backend_index(backend_label(b)), b);
        }
        assert_eq!(backend_index("nonsense"), BACKEND_EPOCH);
    }
}
