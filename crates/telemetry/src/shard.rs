//! Per-shard server gauges: connection, shed and timeout accounting.
//!
//! A reactor shard is a single-writer domain, so each shard gets one
//! cache-padded block of counters it alone increments; any thread may
//! snapshot. The set is allocated once for the run (no registration
//! protocol) and snapshots fold into per-shard rows plus a totals row for
//! the report and the degradation gates.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::utils::CachePadded;
use serde::{Deserialize, Serialize};

/// One shard's counters. All monotonic except [`open_conns`], a gauge the
/// shard stores outright.
///
/// [`open_conns`]: ShardGauges::open_conns
#[derive(Debug, Default)]
pub struct ShardGauges {
    /// Connections accepted (handshake completed, state allocated).
    pub accepted: AtomicU64,
    /// Dials shed at the listen queue (accept backpressure).
    pub shed_accepts: AtomicU64,
    /// Handshakes refused by injected `net.accept` faults (dropped SYNs).
    pub refused_accepts: AtomicU64,
    /// Established connections evicted by load shedding (hard pressure).
    pub shed_conns: AtomicU64,
    /// Connections evicted by an idle/slow deadline.
    pub timeouts: AtomicU64,
    /// Reads that returned would-block (slowloris peers).
    pub read_stalls: AtomicU64,
    /// Requests fully served.
    pub requests: AtomicU64,
    /// Alloc-failure retries taken by the backoff path.
    pub alloc_retries: AtomicU64,
    /// Connections dropped because the retry budget ran out.
    pub alloc_drops: AtomicU64,
    /// Live connections on the shard (gauge).
    pub open_conns: AtomicU64,
}

impl ShardGauges {
    /// Bumps a counter by one (all counters are relaxed; single writer).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Stores the live-connection gauge.
    pub fn set_open(&self, n: u64) {
        self.open_conns.store(n, Ordering::Relaxed);
    }

    /// Reads one shard's counters into a row.
    pub fn snapshot(&self) -> ShardRow {
        ShardRow {
            accepted: self.accepted.load(Ordering::Relaxed),
            shed_accepts: self.shed_accepts.load(Ordering::Relaxed),
            refused_accepts: self.refused_accepts.load(Ordering::Relaxed),
            shed_conns: self.shed_conns.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            read_stalls: self.read_stalls.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            alloc_retries: self.alloc_retries.load(Ordering::Relaxed),
            alloc_drops: self.alloc_drops.load(Ordering::Relaxed),
            open_conns: self.open_conns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one shard's gauges (or the totals across
/// shards).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardRow {
    /// See [`ShardGauges::accepted`].
    pub accepted: u64,
    /// See [`ShardGauges::shed_accepts`].
    pub shed_accepts: u64,
    /// See [`ShardGauges::refused_accepts`].
    pub refused_accepts: u64,
    /// See [`ShardGauges::shed_conns`].
    pub shed_conns: u64,
    /// See [`ShardGauges::timeouts`].
    pub timeouts: u64,
    /// See [`ShardGauges::read_stalls`].
    pub read_stalls: u64,
    /// See [`ShardGauges::requests`].
    pub requests: u64,
    /// See [`ShardGauges::alloc_retries`].
    pub alloc_retries: u64,
    /// See [`ShardGauges::alloc_drops`].
    pub alloc_drops: u64,
    /// See [`ShardGauges::open_conns`].
    pub open_conns: u64,
}

impl ShardRow {
    /// Adds `other` into `self`, field-wise (gauges sum too: the total
    /// open-connection count is the sum of per-shard gauges).
    pub fn absorb(&mut self, other: &ShardRow) {
        self.accepted += other.accepted;
        self.shed_accepts += other.shed_accepts;
        self.refused_accepts += other.refused_accepts;
        self.shed_conns += other.shed_conns;
        self.timeouts += other.timeouts;
        self.read_stalls += other.read_stalls;
        self.requests += other.requests;
        self.alloc_retries += other.alloc_retries;
        self.alloc_drops += other.alloc_drops;
        self.open_conns += other.open_conns;
    }

    /// Everything shed or evicted rather than served: the "not panicked,
    /// counted" number the overload gate checks.
    pub fn total_shed(&self) -> u64 {
        self.shed_accepts + self.shed_conns + self.timeouts + self.alloc_drops
    }
}

/// The per-shard gauge set for one server run.
#[derive(Debug)]
pub struct ShardSet {
    shards: Vec<CachePadded<ShardGauges>>,
}

impl ShardSet {
    /// Allocates gauges for `nshards` shards.
    pub fn new(nshards: usize) -> Self {
        Self {
            shards: (0..nshards)
                .map(|_| CachePadded::new(ShardGauges::default()))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The gauge block for shard `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn shard(&self, index: usize) -> &ShardGauges {
        &self.shards[index]
    }

    /// Per-shard rows in shard order.
    pub fn rows(&self) -> Vec<ShardRow> {
        self.shards.iter().map(|s| s.snapshot()).collect()
    }

    /// Sum of all shards' rows.
    pub fn totals(&self) -> ShardRow {
        let mut total = ShardRow::default();
        for shard in &self.shards {
            total.absorb(&shard.snapshot());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_across_shards() {
        let set = ShardSet::new(3);
        for (i, n) in [(0usize, 2u64), (1, 3), (2, 5)] {
            let g = set.shard(i);
            for _ in 0..n {
                ShardGauges::bump(&g.accepted);
            }
            g.set_open(n);
            ShardGauges::bump(&g.shed_accepts);
        }
        let totals = set.totals();
        assert_eq!(totals.accepted, 10);
        assert_eq!(totals.open_conns, 10);
        assert_eq!(totals.shed_accepts, 3);
        assert_eq!(set.rows().len(), 3);
        assert_eq!(set.rows()[2].accepted, 5);
    }

    #[test]
    fn total_shed_counts_every_non_served_path() {
        let mut row = ShardRow {
            shed_accepts: 1,
            shed_conns: 2,
            timeouts: 3,
            alloc_drops: 4,
            ..ShardRow::default()
        };
        assert_eq!(row.total_shed(), 10);
        let other = ShardRow {
            timeouts: 1,
            ..ShardRow::default()
        };
        row.absorb(&other);
        assert_eq!(row.total_shed(), 11);
    }
}
