//! Trace-event vocabulary and the decoded record form.

use serde::{Deserialize, Serialize};

/// Number of event kinds; sizes the per-lane kind-count arrays.
pub const KIND_COUNT: usize = 26;

/// What happened. The discriminant is the on-ring wire value, so new kinds
/// must only ever be appended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum EventKind {
    /// A `synchronize()` call observed its start grace-period state
    /// (`a` = raw epoch at entry).
    GpBegin = 0,
    /// The global epoch advanced using the membarrier-elided read path
    /// (`a` = new raw epoch).
    GpAdvanceMembarrier = 1,
    /// The global epoch advanced on the portable fence fallback path
    /// (`a` = new raw epoch).
    GpAdvanceFence = 2,
    /// A `synchronize()` call completed (`a` = wait nanoseconds,
    /// `b` = raw epoch at completion).
    GpComplete = 3,
    /// An object was stamped into a per-CPU latent cache
    /// (`a` = raw epoch stamp, `b` = latent length after the stamp).
    LatentStamp = 4,
    /// Grace-period-complete latent objects merged into the object cache
    /// (`a` = objects merged, `b` = raw epoch observed).
    LatentMerge = 5,
    /// The idle-time pre-flush worker drained a latent cache
    /// (`a` = objects moved to slabs).
    LatentPreflush = 6,
    /// A latent/object-cache overflow flushed objects to the slab layer
    /// (`a` = objects flushed).
    LatentFlush = 7,
    /// Deferred-object hints pre-moved a slab between lists before its
    /// grace period completed (`a` = slab index).
    SlabPremove = 8,
    /// A slab was allocated from the page allocator (`a` = slabs now
    /// live).
    SlabGrow = 9,
    /// A slab was returned to the page allocator (`a` = slabs now live).
    SlabShrink = 10,
    /// An allocation stalled waiting for deferred memory under OOM
    /// pressure (`a` = raw epoch observed at the stall).
    OomDefer = 11,
    /// A `free_deferred` entered the reclamation pipeline
    /// (`a` = raw epoch stamp).
    DeferredFree = 12,
    /// A deferred object became reusable (`a` = defer→reusable delay in
    /// nanoseconds, when known).
    DeferredReusable = 13,
    /// The stall watchdog observed a reader pinned past the threshold
    /// (`a` = stall duration in nanoseconds so far, `b` = offending
    /// thread-record id).
    StallWarn = 14,
    /// A previously-warned stalled reader unpinned (`a` = total stall
    /// duration in nanoseconds, `b` = thread-record id).
    StallClear = 15,
    /// An expedited grace-period drive started (`a` = raw epoch at
    /// entry).
    GpExpedite = 16,
    /// The deferred-backlog pressure level changed (`a` = new level:
    /// 0 = nominal, 1 = soft, 2 = hard; `b` = deferred objects
    /// outstanding at the transition).
    PressureChange = 17,
    /// An OOM recovery-ladder rung ran (`a` = stage: 1 = local flush,
    /// 2 = expedited GP + merge, 3 = backoff retry; `b` = 1 if the
    /// retried allocation then succeeded).
    OomRecovery = 18,
    /// The per-CPU fast path selected its engine at cache construction
    /// (`a` = engine: 0 = off, 1 = rseq, 2 = slot-lock emulation;
    /// `b` = per-CPU slot capacity in objects).
    FastpathEngine = 19,
    /// Fast-parked objects were drained back to the regular caches
    /// (`a` = objects drained, `b` = 1 if the drain was part of
    /// disabling the fast path, 0 for a quiesce/flush drain).
    FastpathDrain = 20,
    /// The fast path was toggled or its engine switched at runtime
    /// (`a` = 1 enabled / 0 disabled after the change, `b` = engine now
    /// in effect: 1 = rseq, 2 = slot-lock emulation).
    FastpathToggle = 21,
    /// A hazard-pointer retire-list scan ran (`a` = objects reclaimed,
    /// `b` = objects kept because a hazard protected them).
    HpScan = 22,
    /// A Hyaline-style batch was sealed with its reader reference set
    /// (`a` = objects in the batch, `b` = reader references captured).
    BatchSeal = 23,
    /// A stalled reader was ejected so the batches it blocked could be
    /// released (`a` = offending thread-record id, `b` = the pin
    /// sequence being revoked).
    ReaderEject = 24,
    /// The stall watchdog attributed a stall to a culprit reader: one
    /// record per stall episode, emitted alongside the first
    /// [`StallWarn`](Self::StallWarn) (`a` = offending thread-record id,
    /// `b` = the culprit's pin sequence).
    StallBlame = 25,
}

impl EventKind {
    /// Every kind, in wire order.
    pub const ALL: [EventKind; KIND_COUNT] = [
        EventKind::GpBegin,
        EventKind::GpAdvanceMembarrier,
        EventKind::GpAdvanceFence,
        EventKind::GpComplete,
        EventKind::LatentStamp,
        EventKind::LatentMerge,
        EventKind::LatentPreflush,
        EventKind::LatentFlush,
        EventKind::SlabPremove,
        EventKind::SlabGrow,
        EventKind::SlabShrink,
        EventKind::OomDefer,
        EventKind::DeferredFree,
        EventKind::DeferredReusable,
        EventKind::StallWarn,
        EventKind::StallClear,
        EventKind::GpExpedite,
        EventKind::PressureChange,
        EventKind::OomRecovery,
        EventKind::FastpathEngine,
        EventKind::FastpathDrain,
        EventKind::FastpathToggle,
        EventKind::HpScan,
        EventKind::BatchSeal,
        EventKind::ReaderEject,
        EventKind::StallBlame,
    ];

    /// Stable snake_case name used in exports and kind-count tables.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::GpBegin => "gp_begin",
            EventKind::GpAdvanceMembarrier => "gp_advance_membarrier",
            EventKind::GpAdvanceFence => "gp_advance_fence",
            EventKind::GpComplete => "gp_complete",
            EventKind::LatentStamp => "latent_stamp",
            EventKind::LatentMerge => "latent_merge",
            EventKind::LatentPreflush => "latent_preflush",
            EventKind::LatentFlush => "latent_flush",
            EventKind::SlabPremove => "slab_premove",
            EventKind::SlabGrow => "slab_grow",
            EventKind::SlabShrink => "slab_shrink",
            EventKind::OomDefer => "oom_defer",
            EventKind::DeferredFree => "deferred_free",
            EventKind::DeferredReusable => "deferred_reusable",
            EventKind::StallWarn => "stall_warn",
            EventKind::StallClear => "stall_clear",
            EventKind::GpExpedite => "gp_expedite",
            EventKind::PressureChange => "pressure_change",
            EventKind::OomRecovery => "oom_recovery",
            EventKind::FastpathEngine => "fastpath_engine",
            EventKind::FastpathDrain => "fastpath_drain",
            EventKind::FastpathToggle => "fastpath_toggle",
            EventKind::HpScan => "hp_scan",
            EventKind::BatchSeal => "batch_seal",
            EventKind::ReaderEject => "reader_eject",
            EventKind::StallBlame => "stall_blame",
        }
    }

    /// Decodes a wire value; `None` for out-of-range (torn) values.
    pub fn from_u16(v: u16) -> Option<EventKind> {
        EventKind::ALL.get(v as usize).copied()
    }
}

/// One decoded, checksum-validated trace record.
///
/// The `a`/`b` payload meaning depends on [`kind`](Self::kind); see
/// [`EventKind`]. Kept as plain integers so the struct round-trips through
/// the vendored serde shim.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventSnapshot {
    /// Per-lane sequence number (records overwritten by drop-oldest leave
    /// gaps).
    pub seq: u64,
    /// Process-relative timestamp from [`now_nanos`](crate::now_nanos).
    pub t_ns: u64,
    /// Wire value of the [`EventKind`].
    pub kind: u16,
    /// Ring lane (per-CPU shard index for cache rings).
    pub lane: u16,
    /// Source id: the emitting component (cache id, 0 for the RCU
    /// domain).
    pub src: u32,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

impl EventSnapshot {
    /// The decoded kind (always valid for snapshot-produced records).
    pub fn event_kind(&self) -> EventKind {
        EventKind::from_u16(self.kind).expect("snapshot validated kind")
    }

    /// Stable name of the kind.
    pub fn kind_name(&self) -> &'static str {
        self.event_kind().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_values_round_trip() {
        for (i, kind) in EventKind::ALL.iter().enumerate() {
            assert_eq!(*kind as usize, i);
            assert_eq!(EventKind::from_u16(i as u16), Some(*kind));
        }
        assert_eq!(EventKind::from_u16(KIND_COUNT as u16), None);
    }

    #[test]
    fn names_are_unique() {
        for a in EventKind::ALL {
            for b in EventKind::ALL {
                if a != b {
                    assert_ne!(a.name(), b.name());
                }
            }
        }
    }
}
