//! # pbs-fault — deterministic fault injection for the reclamation stack
//!
//! The paper's headline robustness claim is that Prudence *waits on
//! deferred objects instead of failing* under memory pressure (Algorithm 1
//! lines 31–33). The OOM and stall paths that claim rests on are exactly
//! the paths ordinary workloads never reach; this crate makes them
//! reachable **on demand and reproducibly**.
//!
//! A [`FaultInjector`] holds site-tagged [`Schedule`]s. Instrumented code
//! (the page allocator's block allocation, the RCU grace-period advancer)
//! asks [`should_fail`](FaultInjector::should_fail) at each *fault site*;
//! the injector answers from the schedule and a seeded hash, so a run is
//! reproduced by replaying its seed. Sites without a schedule always
//! answer "no" but still count consults, so a harness can audit which
//! sites a workload actually reached.
//!
//! Determinism: every decision is a pure function of `(seed, site,
//! per-site call index)`. Thread interleavings may assign call indices to
//! different logical operations between runs, but the *sequence* of
//! decisions per site is identical for a given seed, which is what makes
//! chaos-run failures replayable.
//!
//! # Example
//!
//! ```
//! use pbs_fault::{FaultInjector, Schedule};
//!
//! let inj = FaultInjector::new(42);
//! inj.schedule("mem.page_alloc", Schedule::Nth(2));
//! assert!(!inj.should_fail("mem.page_alloc")); // call 1
//! assert!(inj.should_fail("mem.page_alloc"));  // call 2: injected
//! assert!(!inj.should_fail("mem.page_alloc")); // Nth fires once
//! assert_eq!(inj.injected("mem.page_alloc"), 1);
//! assert_eq!(inj.calls("mem.page_alloc"), 3);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

/// Canonical fault-site tags used by the instrumented crates.
///
/// The tags are plain strings so instrumented code does not need to depend
/// on this module, but every site wired in this workspace is listed here
/// so harnesses have one vocabulary to schedule against.
pub mod site {
    /// Any block allocation in `pbs_mem::PageAllocator` (catch-all: a
    /// schedule here fires for every tagged call site as well).
    pub const PAGE_ALLOC: &str = "mem.page_alloc";
    /// The Prudence cache growing by one slab (`GROW`, Algorithm line 29).
    pub const PRUDENCE_GROW: &str = "prudence.grow";
    /// The baseline SLUB cache growing by one slab.
    pub const SLUB_GROW: &str = "slub.grow";
    /// One grace-period advance attempt in `pbs_rcu`; an injected fault
    /// refuses the advance, stalling reclamation for that attempt.
    pub const RCU_ADVANCE: &str = "rcu.advance";
    /// One reclamation-progress step in any `ReclamationDomain` backend —
    /// the generalization of [`RCU_ADVANCE`] to the non-epoch schemes. An
    /// injected fault refuses the step (a hazard-pointer scan, a
    /// Hyaline-style batch seal, or — alongside `rcu.advance` — an epoch
    /// advance), which only procrastinates reclamation and is therefore
    /// always safe to inject.
    pub const RECLAIM_ADVANCE: &str = "reclaim.advance";
    /// Consulted by both caches' refill slow paths. Each injected fault
    /// flips the per-CPU fast path live — off (draining parked objects
    /// back to the regular caches) when it is on, back on otherwise — so
    /// harnesses can prove mid-run switchover is leak-free and
    /// accounting-balanced.
    pub const FASTPATH_DISABLE: &str = "fastpath.disable";
    /// One simulated TCP accept in `pbs_simnet::SimNet::connect`. An
    /// injected fault refuses the handshake (SYN drop) before any slab
    /// traffic happens, so churn harnesses can race connection setup
    /// against refusals without leaking half-built connections.
    pub const NET_ACCEPT: &str = "net.accept";
    /// One simulated socket read in `pbs_simnet::SimNet`'s request paths.
    /// An injected fault models a peer that stops sending mid-request
    /// (slowloris): the read returns would-block and the connection stays
    /// open, pinning its server-side state until a deadline evicts it.
    pub const NET_READ_STALL: &str = "net.read_stall";
}

/// When a site's faults fire. Call indices are 1-based and per site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// Fail exactly the `n`th consult of the site, once.
    Nth(u64),
    /// Fail every `k`th consult (`k`, `2k`, …). `EveryKth(1)` is a total
    /// blackout.
    EveryKth(u64),
    /// Fail each consult independently with probability `p`, decided by a
    /// hash of `(seed, site, call index)` — deterministic per index.
    Probability(f64),
}

impl Schedule {
    fn fires(&self, seed: u64, site_hash: u64, call: u64) -> bool {
        match *self {
            Schedule::Nth(n) => call == n,
            Schedule::EveryKth(k) => k > 0 && call.is_multiple_of(k),
            Schedule::Probability(p) => {
                if p <= 0.0 {
                    return false;
                }
                if p >= 1.0 {
                    return true;
                }
                let unit = (splitmix64(seed ^ site_hash ^ call.wrapping_mul(0x9E37_79B9))
                    >> 11) as f64
                    * (1.0 / (1u64 << 53) as f64);
                unit < p
            }
        }
    }
}

/// Per-site consult/injection accounting plus its schedules.
#[derive(Debug, Default)]
struct SiteState {
    schedules: Vec<Schedule>,
    calls: AtomicU64,
    injected: AtomicU64,
}

/// Accounting for one site, as returned by [`FaultInjector::report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteReport {
    /// The site tag.
    pub site: String,
    /// Total consults of the site (including non-failing ones).
    pub calls: u64,
    /// Consults that were answered with an injected fault.
    pub injected: u64,
}

/// A seeded, site-tagged fault plan shared by every instrumented layer of
/// one run. See the [crate docs](crate) for the model.
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    sites: RwLock<HashMap<&'static str, SiteState>>,
}

impl FaultInjector {
    /// Creates an injector with no schedules; every site answers "no
    /// fault" until [`schedule`](Self::schedule) arms it.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            sites: RwLock::new(HashMap::new()),
        }
    }

    /// The seed this injector decides with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Arms `site` with an additional schedule. A site may carry several;
    /// a consult fails when *any* of them fires.
    pub fn schedule(&self, site: &'static str, schedule: Schedule) {
        self.sites
            .write()
            .entry(site)
            .or_default()
            .schedules
            .push(schedule);
    }

    /// One consult of `site`: counts the call and answers whether the
    /// instrumented operation must fail now.
    ///
    /// Sites other than [`site::PAGE_ALLOC`] that contain a `.` fall back
    /// to the catch-all [`site::PAGE_ALLOC`] consult **only** when the
    /// caller is the page allocator (the allocator consults the specific
    /// tag; the catch-all consult is issued by the allocator itself — see
    /// `PageAllocator::allocate_aligned_at`). This method never blocks
    /// beyond a short map lock.
    pub fn should_fail(&self, site: &'static str) -> bool {
        // Fast path: site already known.
        {
            let sites = self.sites.read();
            if let Some(state) = sites.get(site) {
                return self.consult(site, state);
            }
        }
        // First consult of an unscheduled site: register it so `report`
        // lists the coverage even when nothing is armed there.
        let mut sites = self.sites.write();
        let state = sites.entry(site).or_default();
        state.calls.fetch_add(1, Ordering::Relaxed);
        false
    }

    fn consult(&self, site: &'static str, state: &SiteState) -> bool {
        let call = state.calls.fetch_add(1, Ordering::Relaxed) + 1;
        let site_hash = fnv1a(site);
        let fired = state
            .schedules
            .iter()
            .any(|s| s.fires(self.seed, site_hash, call));
        if fired {
            state.injected.fetch_add(1, Ordering::Relaxed);
        }
        fired
    }

    /// Consults of `site` so far (0 if never consulted).
    pub fn calls(&self, site: &str) -> u64 {
        self.sites
            .read()
            .get(site)
            .map_or(0, |s| s.calls.load(Ordering::Relaxed))
    }

    /// Faults injected at `site` so far.
    pub fn injected(&self, site: &str) -> u64 {
        self.sites
            .read()
            .get(site)
            .map_or(0, |s| s.injected.load(Ordering::Relaxed))
    }

    /// Total faults injected across all sites.
    pub fn total_injected(&self) -> u64 {
        self.sites
            .read()
            .values()
            .map(|s| s.injected.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-site accounting, sorted by site tag for stable output.
    pub fn report(&self) -> Vec<SiteReport> {
        let mut out: Vec<SiteReport> = self
            .sites
            .read()
            .iter()
            .map(|(site, s)| SiteReport {
                site: (*site).to_owned(),
                calls: s.calls.load(Ordering::Relaxed),
                injected: s.injected.load(Ordering::Relaxed),
            })
            .collect();
        out.sort_by(|a, b| a.site.cmp(&b.site));
        out
    }
}

/// SplitMix64 — one full avalanche round; enough to decorrelate
/// `(seed, site, call)` triples for probabilistic schedules.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the site tag, mixing the site into the decision hash.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn unscheduled_sites_never_fail_but_are_counted() {
        let inj = FaultInjector::new(7);
        for _ in 0..10 {
            assert!(!inj.should_fail("mem.page_alloc"));
        }
        assert_eq!(inj.calls("mem.page_alloc"), 10);
        assert_eq!(inj.injected("mem.page_alloc"), 0);
        assert_eq!(inj.report().len(), 1);
    }

    #[test]
    fn nth_fires_exactly_once() {
        let inj = FaultInjector::new(1);
        inj.schedule("s", Schedule::Nth(3));
        let fired: Vec<bool> = (0..6).map(|_| inj.should_fail("s")).collect();
        assert_eq!(fired, vec![false, false, true, false, false, false]);
        assert_eq!(inj.injected("s"), 1);
    }

    #[test]
    fn every_kth_fires_periodically() {
        let inj = FaultInjector::new(1);
        inj.schedule("s", Schedule::EveryKth(4));
        let fired = (0..12).filter(|_| inj.should_fail("s")).count();
        assert_eq!(fired, 3);
    }

    #[test]
    fn blackout_fails_every_call() {
        let inj = FaultInjector::new(1);
        inj.schedule("s", Schedule::EveryKth(1));
        assert!((0..5).all(|_| inj.should_fail("s")));
    }

    #[test]
    fn probability_is_seed_deterministic() {
        let a = FaultInjector::new(99);
        let b = FaultInjector::new(99);
        let c = FaultInjector::new(100);
        for inj in [&a, &b, &c] {
            inj.schedule("s", Schedule::Probability(0.3));
        }
        let da: Vec<bool> = (0..256).map(|_| a.should_fail("s")).collect();
        let db: Vec<bool> = (0..256).map(|_| b.should_fail("s")).collect();
        let dc: Vec<bool> = (0..256).map(|_| c.should_fail("s")).collect();
        assert_eq!(da, db, "same seed must replay the same decisions");
        assert_ne!(da, dc, "different seeds should diverge");
        let rate = da.iter().filter(|f| **f).count();
        assert!((32..160).contains(&rate), "p=0.3 over 256 draws: {rate}");
    }

    #[test]
    fn probability_extremes() {
        let inj = FaultInjector::new(5);
        inj.schedule("never", Schedule::Probability(0.0));
        inj.schedule("always", Schedule::Probability(1.0));
        assert!((0..20).all(|_| !inj.should_fail("never")));
        assert!((0..20).all(|_| inj.should_fail("always")));
    }

    #[test]
    fn multiple_schedules_union() {
        let inj = FaultInjector::new(1);
        inj.schedule("s", Schedule::Nth(1));
        inj.schedule("s", Schedule::EveryKth(3));
        let fired: Vec<bool> = (0..6).map(|_| inj.should_fail("s")).collect();
        assert_eq!(fired, vec![true, false, true, false, false, true]);
    }

    #[test]
    fn concurrent_consults_account_exactly() {
        let inj = Arc::new(FaultInjector::new(3));
        inj.schedule("s", Schedule::EveryKth(2));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let inj = Arc::clone(&inj);
                std::thread::spawn(move || {
                    (0..1000).filter(|_| inj.should_fail("s")).count() as u64
                })
            })
            .collect();
        let observed: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(inj.calls("s"), 4000);
        assert_eq!(inj.injected("s"), 2000);
        assert_eq!(observed, 2000, "every injection was observed by a caller");
    }

    #[test]
    fn report_is_sorted_and_complete() {
        let inj = FaultInjector::new(1);
        inj.schedule("b", Schedule::Nth(1));
        inj.schedule("a", Schedule::Nth(1));
        inj.should_fail("b");
        inj.should_fail("a");
        inj.should_fail("c");
        let r = inj.report();
        let names: Vec<&str> = r.iter().map(|s| s.site.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(inj.total_injected(), 2);
    }
}
