fn main() {
    // `pbs_rseq`: the target can host the rseq(2) engine (the assembly
    // critical sections and the glibc __rseq_offset ABI). Runtime probes
    // still decide whether the kernel cooperates; Miri is excluded at
    // the use sites via cfg(miri), which build scripts cannot see.
    println!("cargo:rustc-check-cfg=cfg(pbs_rseq)");
    let os = std::env::var("CARGO_CFG_TARGET_OS").unwrap_or_default();
    let arch = std::env::var("CARGO_CFG_TARGET_ARCH").unwrap_or_default();
    let env = std::env::var("CARGO_CFG_TARGET_ENV").unwrap_or_default();
    if os == "linux" && arch == "x86_64" && env == "gnu" {
        println!("cargo:rustc-cfg=pbs_rseq");
    }
}
