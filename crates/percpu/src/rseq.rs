//! The rseq(2) engine: glibc area discovery, the membarrier rseq fence,
//! and the two assembly critical sections (pop/push commit points).
//!
//! ## Protocol
//!
//! Each critical section is registered with the kernel through the
//! thread's rseq area (`area + 8` holds a pointer to the descriptor
//! while the section runs). The kernel guarantees that if the thread is
//! preempted, migrated, or takes a signal while its instruction pointer
//! is inside `[start_ip, start_ip + post_commit_offset)`, control
//! resumes at `abort_ip` instead — so everything before the single
//! commit store is free to be re-run, and the commit store itself is the
//! linearization point. The sections here:
//!
//! * validate the running CPU against the slot the caller picked,
//! * re-check the slot's mode word (a remote drain parks the slot in
//!   `MODE_OFF` *before* issuing the fence, so a section that started
//!   earlier either aborts on the fence or already committed),
//! * read `current`, read/write the item at `items[current-1]` /
//!   `items[current]` (a dead slot either way), and
//! * commit with one plain store to `current`.
//!
//! Aborts restart from scratch; nothing observable happened. The only
//! stores before the commit are to the dead item slot, which a
//! concurrent remote drain never reads (it reads `0..current` only) and
//! a same-CPU successor section overwrites before its own commit.
//!
//! ## Fence
//!
//! `membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED_RSEQ)` interrupts every
//! CPU running this process and restarts any in-flight critical
//! section. After `mode := OFF; fence()`, no rseq commit can land: a
//! section that read the old mode was aborted by the fence, and any new
//! section re-reads the mode inside its window and bails. This is the
//! same expedited-membarrier machinery the RCU grace-period advancer
//! uses against compiler-fence-only readers — one registration covers
//! the process.

#[cfg(all(pbs_rseq, not(miri)))]
mod imp {
    use std::sync::atomic::{AtomicU8, Ordering};

    use crate::SlotHdr;

    // glibc ≥ 2.35 registers an rseq area for every thread and exports
    // its location relative to the thread pointer (fs base on x86-64).
    // `__rseq_size == 0` means registration is disabled (old kernel or
    // glibc tunable) and the engine must not run.
    extern "C" {
        static __rseq_offset: isize;
        static __rseq_size: u32;
    }

    const SYS_MEMBARRIER: i64 = 324;
    const MEMBARRIER_CMD_PRIVATE_EXPEDITED_RSEQ: i64 = 1 << 7;
    const MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED_RSEQ: i64 = 1 << 8;

    fn membarrier(cmd: i64) -> i64 {
        let ret: i64;
        // SAFETY: well-formed membarrier syscall; no memory is passed.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") SYS_MEMBARRIER => ret,
                in("rdi") cmd,
                in("rsi") 0,
                in("rdx") 0,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    /// 0 = unprobed, 1 = rseq + fence available, 2 = unavailable.
    static SUPPORT: AtomicU8 = AtomicU8::new(0);

    pub(crate) fn supported() -> bool {
        match SUPPORT.load(Ordering::Acquire) {
            1 => true,
            2 => false,
            _ => probe(),
        }
    }

    #[cold]
    fn probe() -> bool {
        // SAFETY: reading a glibc-initialized extern static.
        let registered = unsafe { __rseq_size } >= 20;
        // The engine is only safe with the rseq fence (remote drains
        // rely on it), so its registration gates the whole engine.
        let ok = registered && membarrier(MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED_RSEQ) == 0;
        SUPPORT.store(if ok { 1 } else { 2 }, Ordering::Release);
        ok
    }

    /// Restarts every in-flight rseq critical section in this process.
    /// No-op when the engine never probed available (nothing to fence).
    pub(crate) fn fence() {
        if supported() {
            let ret = membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED_RSEQ);
            assert_eq!(
                ret, 0,
                "rseq membarrier fence failed after successful registration"
            );
        }
    }

    /// This thread's rseq area (kernel-updated `cpu_id` at +4,
    /// `rseq_cs` pointer at +8).
    #[inline]
    pub(crate) fn area() -> *mut u8 {
        let tp: *mut u8;
        // SAFETY: reads the thread pointer from the TCB self-pointer at
        // fs:0 (x86-64 SysV TLS ABI).
        unsafe {
            std::arch::asm!(
                "mov {}, qword ptr fs:[0]",
                out(reg) tp,
                options(nostack, preserves_flags, readonly),
            );
        }
        // SAFETY: glibc guarantees the area lives at this offset for
        // every thread once __rseq_size > 0 (checked in `supported`).
        unsafe { tp.offset(__rseq_offset) }
    }

    /// The CPU this thread is running on, as maintained by the kernel.
    /// `u32::MAX` when the thread is not registered.
    #[inline]
    pub(crate) fn current_cpu(area: *mut u8) -> u32 {
        // SAFETY: in-bounds field of the registered rseq area; volatile
        // because the kernel writes it asynchronously.
        unsafe { (area.add(4) as *const u32).read_volatile() }
    }

    extern "C" {
        fn pbs_percpu_rseq_pop(area: *mut u8, cpu: u32, slot: *const SlotHdr) -> usize;
        fn pbs_percpu_rseq_push(area: *mut u8, cpu: u32, slot: *const SlotHdr, obj: usize)
            -> usize;
    }

    /// Pop commit point. Returns the object address, or 0 = empty,
    /// 1 = restart (preempted/migrated/aborted), 2 = slot not in rseq
    /// mode.
    ///
    /// # Safety
    ///
    /// `area` must be this thread's registered rseq area and `slot` a
    /// live [`SlotHdr`] whose index equals `cpu`.
    #[inline]
    pub(crate) unsafe fn pop(area: *mut u8, cpu: u32, slot: &SlotHdr) -> usize {
        pbs_percpu_rseq_pop(area, cpu, slot)
    }

    /// Push commit point. Returns 0 = pushed, 1 = restart, 2 = slot not
    /// in rseq mode, 3 = full.
    ///
    /// # Safety
    ///
    /// As for [`pop`]; `obj` must be a real object address (> 3).
    #[inline]
    pub(crate) unsafe fn push(area: *mut u8, cpu: u32, slot: &SlotHdr, obj: usize) -> usize {
        pbs_percpu_rseq_push(area, cpu, slot, obj)
    }

    // SlotHdr layout contract shared with the assembly below:
    //   +0  current (u64)   — the commit word
    //   +8  cap     (u64)
    //   +16 mode    (u32)   — must equal 1 (MODE_RSEQ) to commit
    //   +24 items   (*mut usize)
    //
    // rseq ABI: area+4 = cpu_id (u32), area+8 = rseq_cs (u64 pointer to
    // the descriptor). The descriptor is {version, flags, start_ip,
    // post_commit_offset, abort_ip}, 32-byte aligned, and the four bytes
    // before abort_ip must hold the glibc signature 0x53053053.
    std::arch::global_asm!(
        r#"
        .pushsection .text
        .p2align 4
        .globl pbs_percpu_rseq_pop
        .type pbs_percpu_rseq_pop, @function
    pbs_percpu_rseq_pop:
        lea rax, [rip + 100f]
        mov qword ptr [rdi + 8], rax     // arm: area->rseq_cs = descriptor
    1:                                   // start_ip
        mov eax, dword ptr [rdi + 4]     // kernel-maintained cpu_id
        cmp eax, esi
        jne 4f                           // migrated since the caller looked
        mov eax, dword ptr [rdx + 16]    // slot mode
        cmp eax, 1
        jne 5f                           // parked or lock-owned
        mov rax, qword ptr [rdx]         // current
        test rax, rax
        jz 6f                            // empty
        sub rax, 1
        mov r9, qword ptr [rdx + 24]     // items
        mov r10, qword ptr [r9 + rax*8]  // the object (pre-commit read)
        mov qword ptr [rdx], rax         // COMMIT: current -= 1
    2:                                   // post-commit
        mov qword ptr [rdi + 8], 0
        mov rax, r10
        ret
    4:  mov qword ptr [rdi + 8], 0
        mov eax, 1
        ret
    5:  mov qword ptr [rdi + 8], 0
        mov eax, 2
        ret
    6:  mov qword ptr [rdi + 8], 0
        xor eax, eax
        ret
        .balign 4
        .long 0x53053053                 // abort signature (glibc RSEQ_SIG)
    3:                                   // abort_ip: kernel lands here on restart
        mov qword ptr [rdi + 8], 0
        mov eax, 1
        ret
        .size pbs_percpu_rseq_pop, . - pbs_percpu_rseq_pop
        .pushsection .data.rel.ro, "aw"
        .balign 32
    100:                                 // struct rseq_cs
        .long 0, 0                       // version, flags
        .quad 1b                         // start_ip
        .quad 2b - 1b                    // post_commit_offset
        .quad 3b                         // abort_ip
        .popsection

        .p2align 4
        .globl pbs_percpu_rseq_push
        .type pbs_percpu_rseq_push, @function
    pbs_percpu_rseq_push:
        lea rax, [rip + 100f]
        mov qword ptr [rdi + 8], rax
    1:                                   // start_ip
        mov eax, dword ptr [rdi + 4]
        cmp eax, esi
        jne 4f
        mov eax, dword ptr [rdx + 16]
        cmp eax, 1
        jne 5f
        mov rax, qword ptr [rdx]         // current
        cmp rax, qword ptr [rdx + 8]     // cap
        jae 6f                           // full
        mov r9, qword ptr [rdx + 24]
        mov qword ptr [r9 + rax*8], rcx  // items[current] = obj (dead slot)
        add rax, 1
        mov qword ptr [rdx], rax         // COMMIT: current += 1
    2:                                   // post-commit
        mov qword ptr [rdi + 8], 0
        xor eax, eax
        ret
    4:  mov qword ptr [rdi + 8], 0
        mov eax, 1
        ret
    5:  mov qword ptr [rdi + 8], 0
        mov eax, 2
        ret
    6:  mov qword ptr [rdi + 8], 0
        mov eax, 3
        ret
        .balign 4
        .long 0x53053053
    3:                                   // abort_ip
        mov qword ptr [rdi + 8], 0
        mov eax, 1
        ret
        .size pbs_percpu_rseq_push, . - pbs_percpu_rseq_push
        .pushsection .data.rel.ro, "aw"
        .balign 32
    100:
        .long 0, 0
        .quad 1b
        .quad 2b - 1b
        .quad 3b
        .popsection
        .popsection
    "#
    );
}

#[cfg(not(all(pbs_rseq, not(miri))))]
mod imp {
    /// Without the rseq engine compiled in, the probe is a constant
    /// "no" and the fence has nothing to restart.
    pub(crate) fn supported() -> bool {
        false
    }

    pub(crate) fn fence() {}
}

pub(crate) use imp::*;
