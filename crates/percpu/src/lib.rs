//! Per-CPU critical sections with two interchangeable engines.
//!
//! The hot paths of both allocators (`prudence`, `pbs-slub`) want an
//! uncontended alloc/free pair to perform **zero atomic
//! read-modify-writes and zero lock acquisitions** — the property the
//! paper attributes to Prudence's per-CPU object caches running under
//! kernel preemption control. Userspace has no `preempt_disable`, but
//! Linux offers the next best thing: restartable sequences
//! ([`rseq(2)`]), where the kernel *restarts* a registered critical
//! section whenever the thread is preempted or migrated, so a
//! load→compute→single-commit-store sequence is per-CPU atomic without
//! any `lock`-prefixed instruction.
//!
//! This crate packages that as a [`FastCache`]: a per-CPU array stack of
//! `usize` values (object addresses) with push/pop commit points. Two
//! engines implement the protocol behind one API:
//!
//! * [`Engine::Rseq`] — the real thing. Requires Linux ≥ 4.18 on
//!   x86-64/glibc with `membarrier(PRIVATE_EXPEDITED_RSEQ)` available
//!   (the fence that lets another thread *stop* all in-flight critical
//!   sections, which remote drains need). Selected automatically, like
//!   the membarrier fallback in `pbs-rcu`.
//! * [`Engine::Locks`] — a portable emulation that performs the same
//!   slot operations under a per-slot `parking_lot` mutex (today's
//!   slot-lock protocol). Always available; the only choice under Miri
//!   or on non-rseq platforms, and forceable with `PBS_FASTPATH=locks`.
//!
//! Engines are **live-switchable per cache**: every slot carries a mode
//! word (`off` / `rseq` / `locks`) that the rseq critical section checks
//! *inside* the commit window and the lock engine checks under its
//! mutex. Switching modes takes every slot lock, parks the slots in
//! `off`, issues one rseq fence (aborting any still-running critical
//! section), and only then installs the new mode — so a stale reader of
//! the engine hint can never commit against the wrong protocol; it just
//! bails to the caller's slow path.
//!
//! Statistics (`alloc_hits`, `free_hits`, `restarts`, `fallbacks`) are
//! accumulated in per-thread single-writer counters — plain load+store
//! bumps, since counting must not reintroduce the atomics the fast path
//! just removed — registered with a shared sink that
//! [`FastCache::snapshot`] reads through, so no count ever waits on a
//! thread-exit flush.
//!
//! [`rseq(2)`]: https://man7.org/linux/man-pages/man2/rseq.2.html

mod rseq;
mod tls;

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Slot mode: no fast-path commits allowed (drains, engine switches).
const MODE_OFF: u32 = 0;
/// Slot mode: rseq critical sections may commit; the mutex is only for
/// remote drains and mode changes.
const MODE_RSEQ: u32 = 1;
/// Slot mode: all slot operations go through the per-slot mutex.
const MODE_LOCKS: u32 = 2;

/// Which per-CPU protocol a [`FastCache`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Restartable-sequence commit points (Linux, x86-64, glibc ≥ 2.35).
    Rseq,
    /// Portable slot-lock emulation.
    Locks,
}

impl Engine {
    /// Stable label for logs, metrics and `PBS_FASTPATH`.
    pub fn label(self) -> &'static str {
        match self {
            Engine::Rseq => "rseq",
            Engine::Locks => "locks",
        }
    }

    fn mode(self) -> u32 {
        match self {
            Engine::Rseq => MODE_RSEQ,
            Engine::Locks => MODE_LOCKS,
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

const ENGINE_UNDECIDED: u8 = 0;
const ENGINE_RSEQ: u8 = 1;
const ENGINE_LOCKS: u8 = 2;

/// Process-wide default engine, decided once on first use (the same
/// decide-once pattern as the RCU membarrier strategy).
static DEFAULT_ENGINE: AtomicU8 = AtomicU8::new(ENGINE_UNDECIDED);

/// The engine new [`FastCache`]s start on: `PBS_FASTPATH` if set
/// (`rseq`/`locks`), otherwise `rseq` when the kernel supports both
/// restartable sequences and the rseq membarrier fence, else `locks`.
pub fn default_engine() -> Engine {
    match DEFAULT_ENGINE.load(Ordering::Acquire) {
        ENGINE_RSEQ => Engine::Rseq,
        ENGINE_LOCKS => Engine::Locks,
        _ => decide_default(),
    }
}

#[cold]
fn decide_default() -> Engine {
    let want = match std::env::var("PBS_FASTPATH").as_deref() {
        Ok("locks") => Engine::Locks,
        // An explicit `rseq` request still degrades gracefully on
        // platforms without it: the emulation engine is the honest
        // answer, not a panic.
        Ok("rseq") | Ok(_) | Err(_) => {
            if rseq::supported() {
                Engine::Rseq
            } else {
                Engine::Locks
            }
        }
    };
    let code = match want {
        Engine::Rseq => ENGINE_RSEQ,
        Engine::Locks => ENGINE_LOCKS,
    };
    match DEFAULT_ENGINE.compare_exchange(
        ENGINE_UNDECIDED,
        code,
        Ordering::AcqRel,
        Ordering::Acquire,
    ) {
        Ok(_) => want,
        Err(prev) if prev == ENGINE_RSEQ => Engine::Rseq,
        Err(_) => Engine::Locks,
    }
}

/// Forces the process default to the lock engine. Returns `false` if the
/// default was already decided as rseq (too late to force). Used by test
/// binaries that must cover the portable path deterministically.
pub fn force_locks_engine() -> bool {
    match DEFAULT_ENGINE.compare_exchange(
        ENGINE_UNDECIDED,
        ENGINE_LOCKS,
        Ordering::AcqRel,
        Ordering::Acquire,
    ) {
        Ok(_) => true,
        Err(prev) => prev == ENGINE_LOCKS,
    }
}

/// Whether the rseq engine can run in this process (registered rseq area
/// plus the `PRIVATE_EXPEDITED_RSEQ` membarrier fence).
pub fn rseq_available() -> bool {
    rseq::supported()
}

/// Whether `PBS_FASTPATH=off` disabled the fast path for this process.
/// Allocators consult this at construction so an `off` run measures the
/// regular per-CPU paths alone (the pre-fast-path baseline).
pub fn env_disabled() -> bool {
    static DISABLED: AtomicU8 = AtomicU8::new(0);
    match DISABLED.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let off = matches!(std::env::var("PBS_FASTPATH").as_deref(), Ok("off"));
            DISABLED.store(if off { 2 } else { 1 }, Ordering::Relaxed);
            off
        }
    }
}

/// Number of per-CPU slots a [`FastCache`] allocates: one per *possible*
/// CPU id, so an rseq-reported cpu number always indexes its own slot
/// (any sharing would break the per-CPU mutual-exclusion argument).
pub fn nslots() -> usize {
    static NSLOTS: AtomicUsize = AtomicUsize::new(0);
    let cached = NSLOTS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = possible_cpus();
    NSLOTS.store(n, Ordering::Relaxed);
    n
}

fn possible_cpus() -> usize {
    // `/sys/.../possible` is authoritative for the highest cpu id rseq
    // can ever report ("0-63" style); affinity-based counts can
    // undercount on restricted cpusets. Fall back gracefully (Miri,
    // non-Linux, sandboxes).
    if let Ok(s) = std::fs::read_to_string("/sys/devices/system/cpu/possible") {
        if let Some(hi) = s.trim().rsplit(['-', ',']).next() {
            if let Ok(hi) = hi.parse::<usize>() {
                return (hi + 1).min(4096);
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Per-CPU slot header, layout shared with the rseq assembly:
/// `current` at +0, `cap` at +8, `mode` at +16, `items` at +24.
/// Cache-line aligned and padded so neighbouring CPUs' slots (and their
/// lock words) never false-share.
#[repr(C, align(128))]
struct SlotHdr {
    /// Number of objects in `items`; the single commit store of both
    /// critical sections. Only written inside an rseq critical section
    /// or under the slot mutex with the matching mode.
    current: AtomicU64,
    /// Capacity of `items` (read-only after construction).
    cap: u64,
    /// `MODE_*`: which protocol may currently touch this slot. The rseq
    /// critical section re-checks it inside the commit window, so
    /// parking the slot in `MODE_OFF` plus one rseq fence is sufficient
    /// to stop all fast-path commits.
    mode: AtomicU32,
    _pad: u32,
    /// The object stack; heap buffer owned by the slot (freed in Drop).
    items: *mut usize,
}

struct Slot {
    hdr: SlotHdr,
    /// Taken by the lock engine's hit path, and by drains/mode switches
    /// under either engine.
    lock: Mutex<()>,
    /// Lock-engine counters, bumped with plain load+store while the slot
    /// lock is held (the repo's `Counter::bump` discipline): the hit
    /// path must not pay the thread-local stats machinery the rseq
    /// engine needs. Snapshots read them racily, which at worst lags by
    /// the op in flight.
    alloc_hits: AtomicU64,
    free_hits: AtomicU64,
    fallbacks: AtomicU64,
}

impl Slot {
    /// One plain load+store increment; caller holds the slot lock.
    #[inline]
    fn bump(counter: &AtomicU64) {
        counter.store(counter.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
    }
}

// SAFETY: `items` is an owned heap buffer; all access is serialized by
// the slot protocol (rseq per-CPU exclusivity or the slot mutex).
unsafe impl Send for Slot {}
unsafe impl Sync for Slot {}

impl Slot {
    fn new(cap: usize) -> Self {
        let items = Box::leak(vec![0usize; cap].into_boxed_slice()).as_mut_ptr();
        Slot {
            hdr: SlotHdr {
                current: AtomicU64::new(0),
                cap: cap as u64,
                mode: AtomicU32::new(MODE_OFF),
                _pad: 0,
                items,
            },
            lock: Mutex::new(()),
            alloc_hits: AtomicU64::new(0),
            free_hits: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        }
    }
}

impl Drop for Slot {
    fn drop(&mut self) {
        // SAFETY: `items` was leaked from a Box<[usize]> of exactly
        // `cap` elements in `new` and never freed elsewhere.
        unsafe {
            drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                self.hdr.items,
                self.hdr.cap as usize,
            )));
        }
    }
}

/// Outcome of a fast-path pop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastPop {
    /// An object address; the caller owns it now.
    Hit(usize),
    /// The slot was empty — refill via the slow path.
    Empty,
    /// The fast path is unavailable (disabled, mode switch in flight,
    /// slot contended, restart budget exhausted); use the slow path.
    Bypass,
}

/// Outcome of a fast-path push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastPush {
    /// The object is parked in the per-CPU slot.
    Pushed,
    /// The slot is full — flush via the slow path.
    Full,
    /// The fast path is unavailable; use the slow path.
    Bypass,
}

/// Shared-sink totals for one [`FastCache`] (flushed thread-locals
/// included for the calling thread; other threads' in-flight counts
/// arrive when they exit or snapshot).
#[derive(Debug, Clone, Copy, Default)]
pub struct FastPathSnapshot {
    /// Pops served without a lock or atomic RMW.
    pub alloc_hits: u64,
    /// Pushes absorbed without a lock or atomic RMW.
    pub free_hits: u64,
    /// rseq critical sections restarted (preemption/migration aborts).
    pub restarts: u64,
    /// Operations that fell back to the caller's slow path.
    pub fallbacks: u64,
}

/// How many aborted attempts a single operation tolerates before giving
/// the slow path a turn; under heavy preemption the slot lock is the
/// better protocol anyway.
const RESTART_BUDGET: u64 = 64;

static NEXT_CACHE_ID: AtomicU64 = AtomicU64::new(1);

/// A per-CPU stack of object addresses with commit-point push/pop.
///
/// Values are plain `usize`s (object addresses); 0, 1 and 2 are reserved
/// as protocol return codes and must never be pushed — no valid heap
/// address collides with them.
pub struct FastCache {
    id: u64,
    /// Routing hint only: the slot `mode` words are authoritative. A
    /// stale read here costs one bounced attempt, never a wrong commit.
    engine: AtomicU8,
    enabled: AtomicBool,
    /// Capacity-zero caches are permanently off and skip all counting.
    off: bool,
    slots: Box<[Slot]>,
    sink: Arc<tls::Sinks>,
}

impl std::fmt::Debug for FastCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FastCache")
            .field("engine", &self.engine())
            .field("enabled", &self.is_enabled())
            .field("slots", &self.slots.len())
            .finish()
    }
}

impl FastCache {
    /// A cache with one `cap`-element slot per possible CPU, enabled on
    /// the process default engine. `cap == 0` builds a permanently-off
    /// cache (every operation bypasses, nothing is counted).
    pub fn new(cap: usize) -> Self {
        Self::with_slots(cap, 0)
    }

    /// Like [`new`](Self::new), but with at least `min_slots` slots.
    ///
    /// The rseq engine indexes slots by cpu id and never reaches past
    /// [`nslots`]; the extra slots serve the lock engine, whose threads
    /// round-robin over all of them. An allocator sized for `n` CPU
    /// slots passes `n` here so the emulation engine spreads load the
    /// same way its regular per-CPU caches do, instead of funnelling
    /// every thread through the few slots a small machine would get.
    pub fn with_slots(cap: usize, min_slots: usize) -> Self {
        let n = if cap == 0 {
            1
        } else {
            nslots().max(min_slots.min(4096))
        };
        let slots: Box<[Slot]> = (0..n).map(|_| Slot::new(cap)).collect();
        let cache = FastCache {
            id: NEXT_CACHE_ID.fetch_add(1, Ordering::Relaxed),
            engine: AtomicU8::new(default_engine().mode() as u8),
            enabled: AtomicBool::new(cap > 0),
            off: cap == 0,
            slots,
            sink: Arc::new(tls::Sinks::default()),
        };
        if cap > 0 {
            let mode = cache.engine().mode();
            for slot in cache.slots.iter() {
                slot.hdr.mode.store(mode, Ordering::Release);
            }
        }
        cache
    }

    /// The engine this cache currently routes to.
    pub fn engine(&self) -> Engine {
        if self.engine.load(Ordering::Relaxed) == ENGINE_RSEQ {
            Engine::Rseq
        } else {
            Engine::Locks
        }
    }

    /// Whether the fast path is currently accepting operations.
    pub fn is_enabled(&self) -> bool {
        !self.off && self.enabled.load(Ordering::Relaxed)
    }

    /// Pops an object address from the current CPU's slot.
    // Inline into the allocators' hit paths: an outlined call here costs
    // a measurable share of the emulation engine's per-op budget.
    #[inline]
    pub fn pop(&self) -> FastPop {
        if self.off || !self.enabled.load(Ordering::Relaxed) {
            if !self.off {
                self.count(0, 0, 0, 1);
            }
            return FastPop::Bypass;
        }
        match self.engine() {
            Engine::Rseq => self.pop_rseq(),
            Engine::Locks => self.pop_locks(),
        }
    }

    /// Pushes an object address onto the current CPU's slot.
    ///
    /// `obj` must be a real object address (> 2; the low values are
    /// protocol codes).
    #[inline]
    pub fn push(&self, obj: usize) -> FastPush {
        debug_assert!(obj > 2, "low values are reserved protocol codes");
        if self.off || !self.enabled.load(Ordering::Relaxed) {
            if !self.off {
                self.count(0, 0, 0, 1);
            }
            return FastPush::Bypass;
        }
        match self.engine() {
            Engine::Rseq => self.push_rseq(obj),
            Engine::Locks => self.push_locks(obj),
        }
    }

    #[cfg(all(pbs_rseq, not(miri)))]
    fn pop_rseq(&self) -> FastPop {
        let area = rseq::area();
        let mut restarts = 0u64;
        loop {
            let cpu = rseq::current_cpu(area) as usize;
            let Some(slot) = self.slots.get(cpu) else {
                // Unregistered thread (cpu_id = -1) or a cpu beyond the
                // possible range we sized for: never fast-path it.
                self.count(0, 0, restarts, 1);
                return FastPop::Bypass;
            };
            // SAFETY: slot layout matches the asm contract; `cpu` is the
            // id the critical section re-validates before committing.
            match unsafe { rseq::pop(area, cpu as u32, &slot.hdr) } {
                0 => {
                    self.count(0, 0, restarts, 1);
                    return FastPop::Empty;
                }
                1 => {
                    restarts += 1;
                    if restarts >= RESTART_BUDGET {
                        self.count(0, 0, restarts, 1);
                        return FastPop::Bypass;
                    }
                }
                2 => {
                    self.count(0, 0, restarts, 1);
                    return FastPop::Bypass;
                }
                obj => {
                    self.count(1, 0, restarts, 0);
                    return FastPop::Hit(obj);
                }
            }
        }
    }

    #[cfg(all(pbs_rseq, not(miri)))]
    fn push_rseq(&self, obj: usize) -> FastPush {
        let area = rseq::area();
        let mut restarts = 0u64;
        loop {
            let cpu = rseq::current_cpu(area) as usize;
            let Some(slot) = self.slots.get(cpu) else {
                self.count(0, 0, restarts, 1);
                return FastPush::Bypass;
            };
            // SAFETY: as in `pop_rseq`.
            match unsafe { rseq::push(area, cpu as u32, &slot.hdr, obj) } {
                0 => {
                    self.count(0, 1, restarts, 0);
                    return FastPush::Pushed;
                }
                1 => {
                    restarts += 1;
                    if restarts >= RESTART_BUDGET {
                        self.count(0, 0, restarts, 1);
                        return FastPush::Bypass;
                    }
                }
                2 => {
                    self.count(0, 0, restarts, 1);
                    return FastPush::Bypass;
                }
                3 => {
                    self.count(0, 0, restarts, 1);
                    return FastPush::Full;
                }
                other => unreachable!("rseq push returned {other}"),
            }
        }
    }

    // Without rseq support the engine hint can never be Rseq (decide()
    // and set_engine() refuse it), but keep the router total.
    #[cfg(not(all(pbs_rseq, not(miri))))]
    fn pop_rseq(&self) -> FastPop {
        self.pop_locks()
    }

    #[cfg(not(all(pbs_rseq, not(miri))))]
    fn push_rseq(&self, obj: usize) -> FastPush {
        self.push_locks(obj)
    }

    fn pop_locks(&self) -> FastPop {
        let slot = &self.slots[tls::lock_slot_index(self.slots.len())];
        let Some(_guard) = slot.lock.try_lock() else {
            // Not under the lock: the shared sink takes this rare bounce.
            self.count(0, 0, 0, 1);
            return FastPop::Bypass;
        };
        if slot.hdr.mode.load(Ordering::Relaxed) != MODE_LOCKS {
            Slot::bump(&slot.fallbacks);
            return FastPop::Bypass;
        }
        let cur = slot.hdr.current.load(Ordering::Relaxed);
        if cur == 0 {
            Slot::bump(&slot.fallbacks);
            return FastPop::Empty;
        }
        // SAFETY: mode is LOCKS and the mutex is held — exclusive slot
        // access; index is within `cap` by the push-side bound check.
        let obj = unsafe { *slot.hdr.items.add(cur as usize - 1) };
        slot.hdr.current.store(cur - 1, Ordering::Relaxed);
        Slot::bump(&slot.alloc_hits);
        FastPop::Hit(obj)
    }

    fn push_locks(&self, obj: usize) -> FastPush {
        let slot = &self.slots[tls::lock_slot_index(self.slots.len())];
        let Some(_guard) = slot.lock.try_lock() else {
            self.count(0, 0, 0, 1);
            return FastPush::Bypass;
        };
        if slot.hdr.mode.load(Ordering::Relaxed) != MODE_LOCKS {
            Slot::bump(&slot.fallbacks);
            return FastPush::Bypass;
        }
        let cur = slot.hdr.current.load(Ordering::Relaxed);
        if cur >= slot.hdr.cap {
            Slot::bump(&slot.fallbacks);
            return FastPush::Full;
        }
        // SAFETY: as in `pop_locks`.
        unsafe { *slot.hdr.items.add(cur as usize) = obj };
        slot.hdr.current.store(cur + 1, Ordering::Relaxed);
        Slot::bump(&slot.free_hits);
        FastPush::Pushed
    }

    /// Parks every slot in `MODE_OFF` (all slot locks held by the
    /// caller via `guards`), fencing out any in-flight rseq critical
    /// section, and returns the previous per-slot modes.
    fn park_slots(&self) -> bool {
        let mut was_rseq = false;
        for slot in self.slots.iter() {
            was_rseq |= slot.hdr.mode.swap(MODE_OFF, Ordering::SeqCst) == MODE_RSEQ;
        }
        if was_rseq {
            // One process-wide fence aborts every critical section that
            // read `MODE_RSEQ` before the swap; afterwards no fast-path
            // commit can land on any slot.
            rseq::fence();
        }
        std::sync::atomic::fence(Ordering::SeqCst);
        was_rseq
    }

    /// Takes the objects currently parked in a slot. Caller must hold
    /// the slot lock with the slot in `MODE_OFF` after [`park_slots`].
    fn take_slot(&self, slot: &Slot, out: &mut Vec<usize>) {
        let n = slot.hdr.current.load(Ordering::Relaxed) as usize;
        for i in 0..n {
            // SAFETY: slot parked and lock held — no concurrent writer.
            out.push(unsafe { *slot.hdr.items.add(i) });
        }
        slot.hdr.current.store(0, Ordering::Relaxed);
    }

    /// Removes and returns every parked object, leaving the cache
    /// enabled. Safe against concurrent hit-path traffic: concurrent
    /// operations bounce to the slow path while the drain holds the
    /// slots parked.
    pub fn drain(&self) -> Vec<usize> {
        if self.off {
            return Vec::new();
        }
        let guards: Vec<_> = self.slots.iter().map(|s| s.lock.lock()).collect();
        self.park_slots();
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            self.take_slot(slot, &mut out);
        }
        if self.enabled.load(Ordering::Relaxed) {
            let mode = self.engine().mode();
            for slot in self.slots.iter() {
                slot.hdr.mode.store(mode, Ordering::SeqCst);
            }
        }
        drop(guards);
        out
    }

    /// Enables or disables the fast path. Disabling drains and returns
    /// every parked object (the caller must hand them back to its slow
    /// path, keeping the switchover leak-free); enabling returns an
    /// empty vec.
    pub fn set_enabled(&self, on: bool) -> Vec<usize> {
        if self.off {
            return Vec::new();
        }
        let guards: Vec<_> = self.slots.iter().map(|s| s.lock.lock()).collect();
        self.enabled.store(on, Ordering::Relaxed);
        self.park_slots();
        let mut out = Vec::new();
        if on {
            let mode = self.engine().mode();
            for slot in self.slots.iter() {
                slot.hdr.mode.store(mode, Ordering::SeqCst);
            }
        } else {
            for slot in self.slots.iter() {
                self.take_slot(slot, &mut out);
            }
        }
        drop(guards);
        out
    }

    /// Switches the engine live, preserving parked objects. Requests
    /// for [`Engine::Rseq`] degrade to [`Engine::Locks`] when rseq is
    /// unavailable; returns the engine actually installed.
    pub fn set_engine(&self, engine: Engine) -> Engine {
        let engine = if engine == Engine::Rseq && !rseq::supported() {
            Engine::Locks
        } else {
            engine
        };
        if self.off {
            return engine;
        }
        let guards: Vec<_> = self.slots.iter().map(|s| s.lock.lock()).collect();
        self.engine.store(
            match engine {
                Engine::Rseq => ENGINE_RSEQ,
                Engine::Locks => ENGINE_LOCKS,
            },
            Ordering::Relaxed,
        );
        self.park_slots();
        if self.enabled.load(Ordering::Relaxed) {
            for slot in self.slots.iter() {
                slot.hdr.mode.store(engine.mode(), Ordering::SeqCst);
            }
        }
        drop(guards);
        engine
    }

    /// Approximate number of parked objects (racy snapshot over slots).
    pub fn cached(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.hdr.current.load(Ordering::Relaxed) as usize)
            .sum()
    }

    /// Totals across all threads: the sink reads through every live
    /// thread's registered counters plus the retired base, so counts
    /// are exact for any reader ordered after the writes (a joined
    /// scope, a quiesced testbed). Lock-engine counts live in the slots
    /// and are always current.
    pub fn snapshot(&self) -> FastPathSnapshot {
        let mut snap = self.sink.read();
        for slot in self.slots.iter() {
            snap.alloc_hits += slot.alloc_hits.load(Ordering::Relaxed);
            snap.free_hits += slot.free_hits.load(Ordering::Relaxed);
            snap.fallbacks += slot.fallbacks.load(Ordering::Relaxed);
        }
        snap
    }

    #[inline]
    fn count(&self, alloc_hits: u64, free_hits: u64, restarts: u64, fallbacks: u64) {
        tls::bump(self.id, &self.sink, alloc_hits, free_hits, restarts, fallbacks);
    }
}

impl Drop for FastCache {
    fn drop(&mut self) {
        // Objects still parked here belong to the owning allocator; it
        // must drain before dropping. Nothing to do for stats: sinks are
        // Arc-shared and thread-locals flush on their own schedule.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    // Object addresses for tests: anything > 2 works; use page-ish
    // values so mistakes are obvious.
    fn addr(i: usize) -> usize {
        0x10_000 + i * 8
    }

    #[test]
    fn engine_labels_round_trip() {
        assert_eq!(Engine::Rseq.label(), "rseq");
        assert_eq!(Engine::Locks.label(), "locks");
        assert_eq!(Engine::Rseq.to_string(), "rseq");
    }

    #[test]
    fn zero_capacity_cache_is_permanently_off() {
        let c = FastCache::new(0);
        assert!(!c.is_enabled());
        assert_eq!(c.pop(), FastPop::Bypass);
        assert_eq!(c.push(addr(1)), FastPush::Bypass);
        assert!(c.drain().is_empty());
        let s = c.snapshot();
        assert_eq!(s.fallbacks, 0, "off caches must not count");
    }

    #[test]
    fn push_pop_round_trip_single_thread() {
        let c = FastCache::new(8);
        assert_eq!(c.pop(), FastPop::Empty);
        for i in 0..8 {
            assert_eq!(c.push(addr(i)), FastPush::Pushed);
        }
        // The lock engine fills one slot; the rseq engine fills the
        // current cpu's. Either way this thread sees LIFO order on an
        // unmigrated run — but migration may split pushes across slots,
        // so only assert conservation.
        let mut got = Vec::new();
        while let FastPop::Hit(v) = c.pop() {
            got.push(v);
        }
        let mut rest = c.drain();
        got.append(&mut rest);
        got.sort_unstable();
        let want: Vec<usize> = (0..8).map(addr).collect();
        assert_eq!(got, want);
        let s = c.snapshot();
        assert_eq!(s.free_hits, 8);
        assert!(s.alloc_hits <= 8);
    }

    #[test]
    fn full_slot_reports_full() {
        let c = FastCache::new(2);
        // On a multi-cpu box pushes may land on different slots; force
        // determinism by draining until a Full shows up or the total
        // pushed exceeds all slots' capacity.
        let total_cap = c.slots.len() * 2;
        let mut pushed = 0;
        let mut saw_full = false;
        for i in 0..total_cap + 1 {
            match c.push(addr(i)) {
                FastPush::Pushed => pushed += 1,
                FastPush::Full => {
                    saw_full = true;
                    break;
                }
                FastPush::Bypass => {}
            }
        }
        assert!(saw_full || pushed <= total_cap);
        c.drain();
    }

    #[test]
    fn disable_drains_and_bypasses() {
        let c = FastCache::new(8);
        assert_eq!(c.push(addr(1)), FastPush::Pushed);
        assert_eq!(c.push(addr(2)), FastPush::Pushed);
        let drained = c.set_enabled(false);
        let mut got: Vec<usize> = drained;
        got.sort_unstable();
        assert_eq!(got, vec![addr(1), addr(2)]);
        assert!(!c.is_enabled());
        assert_eq!(c.pop(), FastPop::Bypass);
        assert_eq!(c.push(addr(3)), FastPush::Bypass);
        assert!(c.set_enabled(true).is_empty());
        assert_eq!(c.push(addr(3)), FastPush::Pushed);
        assert_eq!(c.drain(), vec![addr(3)]);
    }

    #[test]
    fn engine_switch_preserves_parked_objects() {
        let c = FastCache::new(8);
        for i in 0..4 {
            assert_eq!(c.push(addr(i)), FastPush::Pushed);
        }
        let other = match c.engine() {
            Engine::Rseq => Engine::Locks,
            Engine::Locks => Engine::Rseq,
        };
        let installed = c.set_engine(other);
        // Crossing to rseq may degrade back to locks off-Linux; either
        // way the parked objects survive the switch.
        assert_eq!(c.engine(), installed);
        let mut got = c.drain();
        got.sort_unstable();
        assert_eq!(got, (0..4).map(addr).collect::<Vec<_>>());
    }

    /// The emulation engine, exercised concurrently at Miri-friendly
    /// size: conservation (every pushed value pops exactly once) and
    /// balanced stats.
    #[test]
    fn locks_engine_conserves_objects_across_threads() {
        let c = Arc::new(FastCache::new(4));
        c.set_engine(Engine::Locks);
        let threads = if cfg!(miri) { 2 } else { 4 };
        let per = if cfg!(miri) { 16 } else { 4000 };
        let popped: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let c = Arc::clone(&c);
                    s.spawn(move || {
                        let mut got = Vec::new();
                        let mut next = t * per;
                        let end = (t + 1) * per;
                        while next < end {
                            match c.push(addr(next)) {
                                FastPush::Pushed => next += 1,
                                FastPush::Full | FastPush::Bypass => {
                                    if let FastPop::Hit(v) = c.pop() {
                                        got.push(v);
                                    }
                                }
                            }
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<usize> = popped.into_iter().flatten().collect();
        let parked = c.drain();
        let parked_len = parked.len() as u64;
        all.extend(parked);
        all.sort_unstable();
        let want: Vec<usize> = (0..threads * per).map(addr).collect();
        assert_eq!(all, want, "an object was lost or double-popped");
        let s = c.snapshot();
        assert_eq!(s.free_hits, (threads * per) as u64);
        assert_eq!(s.alloc_hits, s.free_hits - parked_len);
    }

    /// Whatever engine the platform picked: hammer push/pop from many
    /// threads while the main thread flips enabled/engine, then check
    /// conservation. This is the live-switchover soundness test.
    #[test]
    #[cfg_attr(miri, ignore = "timing loop; the locks test covers Miri")]
    fn engine_flapping_never_loses_objects() {
        let c = Arc::new(FastCache::new(16));
        let stop = Arc::new(AtomicBool::new(false));
        let mut recovered: Vec<usize> = Vec::new();
        // Each worker reports (addresses it pushed, addresses it popped).
        let results: Vec<(Vec<usize>, Vec<usize>)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let c = Arc::clone(&c);
                    let stop = Arc::clone(&stop);
                    s.spawn(move || {
                        let mut got = Vec::new();
                        let start = t * 100_000;
                        let mut next = start;
                        while !stop.load(Ordering::Relaxed) && next < start + 100_000 {
                            if c.push(addr(next)) == FastPush::Pushed {
                                next += 1;
                            }
                            if let FastPop::Hit(v) = c.pop() {
                                got.push(v);
                            }
                        }
                        ((start..next).map(addr).collect::<Vec<_>>(), got)
                    })
                })
                .collect();
            for round in 0..200 {
                match round % 4 {
                    0 => drop(c.set_engine(Engine::Locks)),
                    1 => recovered.extend(c.set_enabled(false)),
                    2 => drop(c.set_enabled(true)),
                    _ => drop(c.set_engine(default_engine())),
                }
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Relaxed);
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Every address pushed must be accounted for exactly once:
        // popped by some worker, drained by a disable round, or still
        // parked at the end.
        let mut pushed: HashSet<usize> = HashSet::new();
        let mut seen: Vec<usize> = recovered;
        for (p, g) in results {
            pushed.extend(p);
            seen.extend(g);
        }
        seen.extend(c.drain());
        let seen_set: HashSet<usize> = seen.iter().copied().collect();
        assert_eq!(seen_set.len(), seen.len(), "an object was double-popped");
        assert_eq!(seen_set, pushed, "conservation violated");
    }

    #[test]
    fn snapshot_counts_restarts_and_fallbacks_coherently() {
        let c = FastCache::new(4);
        for i in 0..4 {
            c.push(addr(i));
        }
        // One guaranteed fallback: disabled push.
        c.set_enabled(false);
        assert_eq!(c.push(addr(9)), FastPush::Bypass);
        let s = c.snapshot();
        assert!(s.fallbacks >= 1);
        assert_eq!(s.free_hits, 4);
    }
}
