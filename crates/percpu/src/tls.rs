//! Thread-local statistics for the fast paths.
//!
//! The whole point of the rseq engine is a hit path with no atomic
//! read-modify-writes, so its counters cannot be `fetch_add`s. Each
//! thread accumulates per-cache counts in plain [`Cell`]s and flushes
//! them into the cache's shared [`Sinks`] when the thread exits (TLS
//! destructor) or when that cache takes a snapshot from this thread.
//! Totals are therefore exact whenever the reader joined the writers
//! first (every test does) and monotonically catch up otherwise.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::FastPathSnapshot;

/// Shared per-cache totals, written only by flushes (rare) and read by
/// snapshots.
#[derive(Debug, Default)]
pub(crate) struct Sinks {
    alloc_hits: AtomicU64,
    free_hits: AtomicU64,
    restarts: AtomicU64,
    fallbacks: AtomicU64,
}

impl Sinks {
    pub(crate) fn read(&self) -> FastPathSnapshot {
        FastPathSnapshot {
            alloc_hits: self.alloc_hits.load(Ordering::Relaxed),
            free_hits: self.free_hits.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
        }
    }

    fn add(&self, alloc_hits: u64, free_hits: u64, restarts: u64, fallbacks: u64) {
        if alloc_hits != 0 {
            self.alloc_hits.fetch_add(alloc_hits, Ordering::Relaxed);
        }
        if free_hits != 0 {
            self.free_hits.fetch_add(free_hits, Ordering::Relaxed);
        }
        if restarts != 0 {
            self.restarts.fetch_add(restarts, Ordering::Relaxed);
        }
        if fallbacks != 0 {
            self.fallbacks.fetch_add(fallbacks, Ordering::Relaxed);
        }
    }
}

/// One thread's counts for one cache. The `Arc` keeps the sink alive
/// even if the cache drops before the thread exits (the late flush then
/// lands in an orphaned sink, harmlessly).
struct LocalCounts {
    id: u64,
    sink: Arc<Sinks>,
    alloc_hits: Cell<u64>,
    free_hits: Cell<u64>,
    restarts: Cell<u64>,
    fallbacks: Cell<u64>,
}

impl LocalCounts {
    fn flush(&self) {
        self.sink.add(
            self.alloc_hits.take(),
            self.free_hits.take(),
            self.restarts.take(),
            self.fallbacks.take(),
        );
    }
}

struct ThreadStats {
    /// One-entry lookup cache: (cache id, index into `entries`).
    last: Cell<(u64, usize)>,
    entries: RefCell<Vec<LocalCounts>>,
}

impl Drop for ThreadStats {
    fn drop(&mut self) {
        for entry in self.entries.get_mut() {
            entry.flush();
        }
    }
}

thread_local! {
    static TSTATS: ThreadStats = const {
        ThreadStats {
            last: Cell::new((0, usize::MAX)),
            entries: RefCell::new(Vec::new()),
        }
    };
}

#[inline]
fn lookup(t: &ThreadStats, id: u64, sink: &Arc<Sinks>) -> usize {
    let (last_id, idx) = t.last.get();
    if last_id == id {
        return idx;
    }
    slow_lookup(t, id, sink)
}

#[cold]
fn slow_lookup(t: &ThreadStats, id: u64, sink: &Arc<Sinks>) -> usize {
    let mut entries = t.entries.borrow_mut();
    let idx = entries.iter().position(|e| e.id == id).unwrap_or_else(|| {
        entries.push(LocalCounts {
            id,
            sink: Arc::clone(sink),
            alloc_hits: Cell::new(0),
            free_hits: Cell::new(0),
            restarts: Cell::new(0),
            fallbacks: Cell::new(0),
        });
        entries.len() - 1
    });
    drop(entries);
    t.last.set((id, idx));
    idx
}

/// Adds to this thread's counts for cache `id`. Falls back to direct
/// sink updates if the thread's TLS is already torn down (frees running
/// from other TLS destructors).
#[inline]
pub(crate) fn bump(
    id: u64,
    sink: &Arc<Sinks>,
    alloc_hits: u64,
    free_hits: u64,
    restarts: u64,
    fallbacks: u64,
) {
    let done = TSTATS.try_with(|t| {
        let idx = lookup(t, id, sink);
        let entries = t.entries.borrow();
        let e = &entries[idx];
        e.alloc_hits.set(e.alloc_hits.get() + alloc_hits);
        e.free_hits.set(e.free_hits.get() + free_hits);
        e.restarts.set(e.restarts.get() + restarts);
        e.fallbacks.set(e.fallbacks.get() + fallbacks);
    });
    if done.is_err() {
        sink.add(alloc_hits, free_hits, restarts, fallbacks);
    }
}

/// Flushes the calling thread's counts for cache `id` into its sink.
pub(crate) fn flush_current(id: u64) {
    let _ = TSTATS.try_with(|t| {
        let entries = t.entries.borrow();
        if let Some(e) = entries.iter().find(|e| e.id == id) {
            e.flush();
        }
    });
}

/// The lock engine's slot assignment: threads round-robin over slots at
/// first use, mirroring the `CpuRegistry` policy the allocators use for
/// their own per-CPU state.
///
/// The reduction modulo `nslots` is memoized per thread: a hardware
/// divide on every hit-path operation would cost more than the slot
/// stack work itself. The memo revalidates on `nslots` (caches can be
/// sized differently), so the common case is one compare.
#[inline]
pub(crate) fn lock_slot_index(nslots: usize) -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        /// (round-robin base, last nslots seen, base % last nslots)
        static SLOT: Cell<(usize, usize, usize)> = const { Cell::new((usize::MAX, 0, 0)) };
    }
    SLOT.with(|s| {
        let (base, last_n, last_idx) = s.get();
        if last_n == nslots {
            return last_idx;
        }
        let base = if base == usize::MAX {
            NEXT.fetch_add(1, Ordering::Relaxed)
        } else {
            base
        };
        let idx = base % nslots;
        s.set((base, nslots, idx));
        idx
    })
}
