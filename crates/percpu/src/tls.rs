//! Thread-local statistics for the fast paths.
//!
//! The whole point of the rseq engine is a hit path with no atomic
//! read-modify-writes, so its counters cannot be `fetch_add`s. Each
//! thread owns a set of single-writer counters per cache — plain
//! load+store bumps, two MOVs on x86-64, exactly the sharded-stats
//! discipline the allocators use — registered with the cache's shared
//! [`Sinks`] on first use. A snapshot reads *through* to every live
//! thread's counters and adds the retired totals, so totals are exact
//! for any reader that happens-after the writes (a joined scope, a
//! quiesced testbed) and monotonically catch up otherwise.
//!
//! Reading through matters: `std::thread::scope` signals completion
//! when the closure returns, but TLS destructors run later in thread
//! teardown — an exit-time-flush scheme loses whole threads' counts
//! when the scope exits (and the snapshot runs) before the destructor
//! fires. The registry makes the destructor a pure retirement step:
//! counts are visible the moment they are stored, and retirement only
//! moves them from the live list into the retired base under the
//! registry lock.

use std::cell::Cell;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::FastPathSnapshot;

/// One thread's live counters for one cache. Single-writer: only the
/// owning thread stores (plain load+store, never an RMW); any thread
/// may read.
#[derive(Debug, Default)]
struct RemoteCounts {
    alloc_hits: AtomicU64,
    free_hits: AtomicU64,
    restarts: AtomicU64,
    fallbacks: AtomicU64,
}

impl RemoteCounts {
    /// Owner-only bump: load+store keeps the hot path free of atomic
    /// read-modify-writes.
    #[inline]
    fn bump(counter: &AtomicU64, n: u64) {
        if n != 0 {
            counter.store(counter.load(Ordering::Relaxed) + n, Ordering::Relaxed);
        }
    }

    fn add_into(&self, snap: &mut FastPathSnapshot) {
        snap.alloc_hits += self.alloc_hits.load(Ordering::Relaxed);
        snap.free_hits += self.free_hits.load(Ordering::Relaxed);
        snap.restarts += self.restarts.load(Ordering::Relaxed);
        snap.fallbacks += self.fallbacks.load(Ordering::Relaxed);
    }
}

/// Shared per-cache totals: counters retired from exited threads plus
/// a registry of every live thread's counter block.
#[derive(Debug, Default)]
pub(crate) struct Sinks {
    retired_alloc_hits: AtomicU64,
    retired_free_hits: AtomicU64,
    retired_restarts: AtomicU64,
    retired_fallbacks: AtomicU64,
    /// Live threads' counter blocks. Locked only on thread first-use,
    /// thread exit, and snapshots — never on the hit path.
    live: Mutex<Vec<Arc<RemoteCounts>>>,
}

impl Sinks {
    pub(crate) fn read(&self) -> FastPathSnapshot {
        // Hold the registry lock across the whole sum so a concurrent
        // retirement can't be counted twice (once live, once retired)
        // or dropped (retire folds into the base under this same lock).
        let live = self.live.lock().unwrap();
        let mut snap = FastPathSnapshot {
            alloc_hits: self.retired_alloc_hits.load(Ordering::Relaxed),
            free_hits: self.retired_free_hits.load(Ordering::Relaxed),
            restarts: self.retired_restarts.load(Ordering::Relaxed),
            fallbacks: self.retired_fallbacks.load(Ordering::Relaxed),
        };
        for counts in live.iter() {
            counts.add_into(&mut snap);
        }
        snap
    }

    /// Registers a new live counter block for the calling thread.
    fn register(&self) -> Arc<RemoteCounts> {
        let counts = Arc::new(RemoteCounts::default());
        self.live.lock().unwrap().push(Arc::clone(&counts));
        counts
    }

    /// Folds a thread's counters into the retired base and drops them
    /// from the live list (thread exit).
    fn retire(&self, counts: &Arc<RemoteCounts>) {
        let mut live = self.live.lock().unwrap();
        self.retired_alloc_hits
            .fetch_add(counts.alloc_hits.load(Ordering::Relaxed), Ordering::Relaxed);
        self.retired_free_hits
            .fetch_add(counts.free_hits.load(Ordering::Relaxed), Ordering::Relaxed);
        self.retired_restarts
            .fetch_add(counts.restarts.load(Ordering::Relaxed), Ordering::Relaxed);
        self.retired_fallbacks
            .fetch_add(counts.fallbacks.load(Ordering::Relaxed), Ordering::Relaxed);
        live.retain(|c| !Arc::ptr_eq(c, counts));
    }

    /// Direct add for threads whose TLS is already torn down (rare:
    /// frees running from other TLS destructors). Contended-safe.
    fn add(&self, alloc_hits: u64, free_hits: u64, restarts: u64, fallbacks: u64) {
        if alloc_hits != 0 {
            self.retired_alloc_hits.fetch_add(alloc_hits, Ordering::Relaxed);
        }
        if free_hits != 0 {
            self.retired_free_hits.fetch_add(free_hits, Ordering::Relaxed);
        }
        if restarts != 0 {
            self.retired_restarts.fetch_add(restarts, Ordering::Relaxed);
        }
        if fallbacks != 0 {
            self.retired_fallbacks.fetch_add(fallbacks, Ordering::Relaxed);
        }
    }
}

/// One thread's handle on one cache's counters. The `Arc`s keep both
/// the sink and the counter block alive even if the cache drops before
/// the thread exits (the late retirement then lands in an orphaned
/// sink, harmlessly).
struct LocalCounts {
    id: u64,
    sink: Arc<Sinks>,
    counts: Arc<RemoteCounts>,
}

struct ThreadStats {
    /// One-entry lookup cache: (cache id, index into `entries`).
    last: Cell<(u64, usize)>,
    entries: RefCell<Vec<LocalCounts>>,
}

impl Drop for ThreadStats {
    fn drop(&mut self) {
        for entry in self.entries.get_mut() {
            entry.sink.retire(&entry.counts);
        }
    }
}

thread_local! {
    static TSTATS: ThreadStats = const {
        ThreadStats {
            last: Cell::new((0, usize::MAX)),
            entries: RefCell::new(Vec::new()),
        }
    };
}

#[inline]
fn lookup(t: &ThreadStats, id: u64, sink: &Arc<Sinks>) -> usize {
    let (last_id, idx) = t.last.get();
    if last_id == id {
        return idx;
    }
    slow_lookup(t, id, sink)
}

#[cold]
fn slow_lookup(t: &ThreadStats, id: u64, sink: &Arc<Sinks>) -> usize {
    let mut entries = t.entries.borrow_mut();
    let idx = entries.iter().position(|e| e.id == id).unwrap_or_else(|| {
        entries.push(LocalCounts {
            id,
            sink: Arc::clone(sink),
            counts: sink.register(),
        });
        entries.len() - 1
    });
    drop(entries);
    t.last.set((id, idx));
    idx
}

/// Adds to this thread's counts for cache `id`. Falls back to direct
/// sink updates if the thread's TLS is already torn down (frees running
/// from other TLS destructors).
#[inline]
pub(crate) fn bump(
    id: u64,
    sink: &Arc<Sinks>,
    alloc_hits: u64,
    free_hits: u64,
    restarts: u64,
    fallbacks: u64,
) {
    let done = TSTATS.try_with(|t| {
        let idx = lookup(t, id, sink);
        let entries = t.entries.borrow();
        let e = &entries[idx].counts;
        RemoteCounts::bump(&e.alloc_hits, alloc_hits);
        RemoteCounts::bump(&e.free_hits, free_hits);
        RemoteCounts::bump(&e.restarts, restarts);
        RemoteCounts::bump(&e.fallbacks, fallbacks);
    });
    if done.is_err() {
        sink.add(alloc_hits, free_hits, restarts, fallbacks);
    }
}

/// The lock engine's slot assignment: threads round-robin over slots at
/// first use, mirroring the `CpuRegistry` policy the allocators use for
/// their own per-CPU state.
///
/// The reduction modulo `nslots` is memoized per thread: a hardware
/// divide on every hit-path operation would cost more than the slot
/// stack work itself. The memo revalidates on `nslots` (caches can be
/// sized differently), so the common case is one compare.
#[inline]
pub(crate) fn lock_slot_index(nslots: usize) -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        /// (round-robin base, last nslots seen, base % last nslots)
        static SLOT: Cell<(usize, usize, usize)> = const { Cell::new((usize::MAX, 0, 0)) };
    }
    SLOT.with(|s| {
        let (base, last_n, last_idx) = s.get();
        if last_n == nslots {
            return last_idx;
        }
        let base = if base == usize::MAX {
            NEXT.fetch_add(1, Ordering::Relaxed)
        } else {
            base
        };
        let idx = base % nslots;
        s.set((base, nslots, idx));
        idx
    })
}
