//! Migration/preemption stress for the per-CPU ownership protocol.
//!
//! Threads hammer push/pop on a [`FastCache`] while forcing themselves
//! across CPUs with `sched_setaffinity(2)` mid-stream, so rseq critical
//! sections get aborted by migration as often as the machine allows (on
//! a single-CPU host the re-pin is a no-op syscall, and preemption
//! between the oversubscribed workers still drives restarts). The
//! invariant is conservation: every pushed address is popped or drained
//! exactly once, whatever the interleaving of aborts.

#![cfg(all(target_os = "linux", target_arch = "x86_64"))]

use std::collections::HashSet;
use std::sync::Arc;

use pbs_percpu::{FastCache, FastPop, FastPush};

const SYS_SCHED_SETAFFINITY: i64 = 203;
const SYS_SCHED_GETAFFINITY: i64 = 204;

fn affinity_syscall(nr: i64, mask: *mut u64, len: usize) -> i64 {
    let ret: i64;
    // SAFETY: well-formed sched_{set,get}affinity call on the calling
    // thread (pid 0) with a correctly sized mask buffer.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") nr => ret,
            in("rdi") 0,
            in("rsi") len,
            in("rdx") mask,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

/// CPUs the test process may run on (empty if the syscall fails, e.g.
/// under a seccomp sandbox — the test then runs unpinned).
fn allowed_cpus() -> Vec<usize> {
    let mut mask = [0u64; 16];
    let ret = affinity_syscall(
        SYS_SCHED_GETAFFINITY,
        mask.as_mut_ptr(),
        std::mem::size_of_val(&mask),
    );
    if ret <= 0 {
        return Vec::new();
    }
    let mut cpus = Vec::new();
    for (word_idx, word) in mask.iter().enumerate() {
        for bit in 0..64 {
            if word & (1 << bit) != 0 {
                cpus.push(word_idx * 64 + bit);
            }
        }
    }
    cpus
}

/// Pins the calling thread to one CPU; best-effort.
fn pin_to(cpu: usize) {
    let mut mask = [0u64; 16];
    mask[cpu / 64] = 1 << (cpu % 64);
    let _ = affinity_syscall(
        SYS_SCHED_SETAFFINITY,
        mask.as_mut_ptr(),
        std::mem::size_of_val(&mask),
    );
}

/// Restores the full allowed mask.
fn unpin(cpus: &[usize]) {
    let mut mask = [0u64; 16];
    for &cpu in cpus {
        if cpu < 16 * 64 {
            mask[cpu / 64] |= 1 << (cpu % 64);
        }
    }
    let _ = affinity_syscall(
        SYS_SCHED_SETAFFINITY,
        mask.as_mut_ptr(),
        std::mem::size_of_val(&mask),
    );
}

#[test]
fn migration_storm_conserves_objects() {
    let cpus = allowed_cpus();
    let cache = Arc::new(FastCache::new(32));
    let threads = 8;
    let per_thread = 200_000usize;

    let results: Vec<(Vec<usize>, Vec<usize>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let cache = Arc::clone(&cache);
                let cpus = cpus.clone();
                s.spawn(move || {
                    let base = 0x100_000 + t * per_thread * 8;
                    let mut next = 0usize;
                    let mut popped = Vec::new();
                    let mut hop = t; // stagger starting CPUs
                    // Every iteration pushes, pops, or spends bounded
                    // restart budget, so the loop terminates on its own.
                    while next < per_thread {
                        // Force a migration attempt mid-stream every few
                        // hundred operations.
                        if !cpus.is_empty() && next.is_multiple_of(512) {
                            pin_to(cpus[hop % cpus.len()]);
                            hop += 1;
                        }
                        match cache.push(base + next * 8) {
                            FastPush::Pushed => next += 1,
                            FastPush::Full | FastPush::Bypass => {
                                if let FastPop::Hit(v) = cache.pop() {
                                    popped.push(v);
                                }
                            }
                        }
                        if next.is_multiple_of(3) {
                            if let FastPop::Hit(v) = cache.pop() {
                                popped.push(v);
                            }
                        }
                    }
                    if !cpus.is_empty() {
                        unpin(&cpus);
                    }
                    let pushed: Vec<usize> = (0..next).map(|i| base + i * 8).collect();
                    (pushed, popped)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut pushed: HashSet<usize> = HashSet::new();
    let mut seen: Vec<usize> = Vec::new();
    for (p, g) in results {
        pushed.extend(p);
        seen.extend(g);
    }
    seen.extend(cache.drain());
    let seen_set: HashSet<usize> = seen.iter().copied().collect();
    assert_eq!(
        seen_set.len(),
        seen.len(),
        "double handout under migration storm"
    );
    assert_eq!(seen_set, pushed, "conservation violated under migration");

    let snap = cache.snapshot();
    assert_eq!(snap.free_hits, pushed.len() as u64);
    eprintln!(
        "migration storm: engine={} cpus={} hits={}/{} restarts={} fallbacks={}",
        cache.engine(),
        cpus.len().max(1),
        snap.alloc_hits,
        snap.free_hits,
        snap.restarts,
        snap.fallbacks,
    );
}
