//! Conservation + exact-count identity for the rseq engine, mirroring
//! the in-crate locks-engine test. On platforms without rseq the engine
//! degrades to locks and the identities must still hold.

use std::sync::Arc;

use pbs_percpu::{Engine, FastCache, FastPop, FastPush};

/// Counts must be exact the moment a scope joins its workers — even
/// though `std::thread::scope` returns before the workers' TLS
/// destructors run. This is the web-server-integration flake in
/// miniature: four threads round-robining over more caches than the
/// one-entry TLS memo holds, with the snapshot racing thread teardown.
/// An exit-time-flush stats scheme loses whole threads here; the
/// read-through sink registry must not.
#[test]
fn counts_exact_at_scope_join_across_many_caches() {
    for round in 0..40 {
        let caches: Vec<Arc<FastCache>> = (0..6)
            .map(|_| {
                let c = Arc::new(FastCache::new(4));
                c.set_engine(Engine::Rseq);
                c
            })
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let caches = caches.clone();
                s.spawn(move || {
                    for _ in 0..400 {
                        for c in &caches {
                            // Always empty: every pop is one fallback.
                            let _ = c.pop();
                        }
                    }
                });
            }
        });
        for (ci, c) in caches.iter().enumerate() {
            let s = c.snapshot();
            assert_eq!(
                (s.alloc_hits, s.free_hits, s.fallbacks),
                (0, 0, 1600),
                "round {round} cache {ci}: counts lost at scope join: {s:?}"
            );
        }
    }
}

fn addr(i: usize) -> usize {
    0x1000 + i * 8
}

#[test]
fn rseq_counts_match_physical_traffic() {
    for round in 0..8 {
        let c = Arc::new(FastCache::new(4));
        let installed = c.set_engine(Engine::Rseq);
        let threads = 4;
        let per = 4000;
        let popped: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let c = Arc::clone(&c);
                    s.spawn(move || {
                        let mut got = Vec::new();
                        let mut next = t * per;
                        let end = (t + 1) * per;
                        while next < end {
                            match c.push(addr(next)) {
                                FastPush::Pushed => next += 1,
                                FastPush::Full | FastPush::Bypass => {
                                    if let FastPop::Hit(v) = c.pop() {
                                        got.push(v);
                                    }
                                }
                            }
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<usize> = popped.into_iter().flatten().collect();
        let parked = c.drain();
        let parked_len = parked.len() as u64;
        all.extend(parked);
        all.sort_unstable();
        let want: Vec<usize> = (0..threads * per).map(addr).collect();
        assert_eq!(
            all, want,
            "round {round} ({installed:?}): an object was lost or double-popped"
        );
        let s = c.snapshot();
        assert_eq!(
            s.free_hits,
            (threads * per) as u64,
            "round {round} ({installed:?}): push count mismatch: {s:?}"
        );
        assert_eq!(
            s.alloc_hits,
            s.free_hits - parked_len,
            "round {round} ({installed:?}): pop count mismatch (parked {parked_len}): {s:?}"
        );
    }
}
