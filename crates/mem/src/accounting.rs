//! Global memory accounting shared by page allocators and experiments.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Thread-safe counters tracking memory handed out by a [`PageAllocator`].
///
/// The endurance experiment (paper Figure 3) samples [`used_bytes`] every
/// 10 ms to plot the "total used memory in the system" curve.
///
/// [`PageAllocator`]: crate::PageAllocator
/// [`used_bytes`]: MemoryAccounting::used_bytes
///
/// # Example
///
/// ```
/// use pbs_mem::MemoryAccounting;
///
/// let acct = MemoryAccounting::new();
/// acct.record_alloc(4096);
/// acct.record_alloc(4096);
/// acct.record_free(4096);
/// assert_eq!(acct.used_bytes(), 4096);
/// assert_eq!(acct.peak_bytes(), 8192);
/// ```
#[derive(Debug, Default)]
pub struct MemoryAccounting {
    used: AtomicUsize,
    peak: AtomicUsize,
    allocs: AtomicU64,
    frees: AtomicU64,
}

impl MemoryAccounting {
    /// Creates zeroed accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an allocation of `bytes`, updating the peak watermark.
    pub fn record_alloc(&self, bytes: usize) {
        let now = self.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.allocs.fetch_add(1, Ordering::Relaxed);
        // Lock-free peak update; racing updates settle on the maximum.
        let mut peak = self.peak.load(Ordering::Relaxed);
        while now > peak {
            match self
                .peak
                .compare_exchange_weak(peak, now, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(observed) => peak = observed,
            }
        }
    }

    /// Records a free of `bytes`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if more bytes are freed than were allocated.
    pub fn record_free(&self, bytes: usize) {
        let prev = self.used.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "freed more bytes than allocated");
        self.frees.fetch_add(1, Ordering::Relaxed);
    }

    /// Bytes currently allocated and not yet freed.
    pub fn used_bytes(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// High watermark of [`used_bytes`](Self::used_bytes) over the lifetime
    /// of this accounting object.
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Total number of allocation events recorded.
    pub fn alloc_count(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }

    /// Total number of free events recorded.
    pub fn free_count(&self) -> u64 {
        self.frees.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn alloc_free_roundtrip() {
        let a = MemoryAccounting::new();
        a.record_alloc(100);
        a.record_alloc(50);
        assert_eq!(a.used_bytes(), 150);
        a.record_free(100);
        assert_eq!(a.used_bytes(), 50);
        assert_eq!(a.peak_bytes(), 150);
        assert_eq!(a.alloc_count(), 2);
        assert_eq!(a.free_count(), 1);
    }

    #[test]
    fn peak_is_monotone() {
        let a = MemoryAccounting::new();
        a.record_alloc(10);
        a.record_free(10);
        a.record_alloc(5);
        assert_eq!(a.peak_bytes(), 10);
        assert_eq!(a.used_bytes(), 5);
    }

    #[test]
    fn concurrent_accounting_balances() {
        let a = Arc::new(MemoryAccounting::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        a.record_alloc(64);
                        a.record_free(64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(a.used_bytes(), 0);
        assert!(a.peak_bytes() >= 64);
        assert_eq!(a.alloc_count(), 80_000);
        assert_eq!(a.free_count(), 80_000);
    }

    #[test]
    fn default_is_zeroed() {
        let a = MemoryAccounting::default();
        assert_eq!(a.used_bytes(), 0);
        assert_eq!(a.peak_bytes(), 0);
        assert_eq!(a.alloc_count(), 0);
    }
}
