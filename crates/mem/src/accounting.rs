//! Global memory accounting shared by page allocators and experiments.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Thread-safe counters tracking memory handed out by a [`PageAllocator`].
///
/// The endurance experiment (paper Figure 3) samples [`used_bytes`] every
/// 10 ms to plot the "total used memory in the system" curve.
///
/// [`PageAllocator`]: crate::PageAllocator
/// [`used_bytes`]: MemoryAccounting::used_bytes
///
/// # Example
///
/// ```
/// use pbs_mem::MemoryAccounting;
///
/// let acct = MemoryAccounting::new();
/// acct.record_alloc(4096);
/// acct.record_alloc(4096);
/// acct.record_free(4096);
/// assert_eq!(acct.used_bytes(), 4096);
/// assert_eq!(acct.peak_bytes(), 8192);
/// ```
#[derive(Debug, Default)]
pub struct MemoryAccounting {
    used: AtomicUsize,
    peak: AtomicUsize,
    allocs: AtomicU64,
    frees: AtomicU64,
}

impl MemoryAccounting {
    /// Creates zeroed accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an allocation of `bytes`, updating the peak watermark.
    pub fn record_alloc(&self, bytes: usize) {
        let reserved = self.try_reserve(bytes, None);
        debug_assert!(reserved, "unlimited reserve can only fail on overflow");
        self.commit_reserve();
    }

    /// Atomically reserves `bytes` against an optional `limit`.
    ///
    /// On success `used` includes the reservation and the caller **must**
    /// follow up with [`commit_reserve`](Self::commit_reserve) once the
    /// backing allocation succeeds, or [`cancel_reserve`](Self::cancel_reserve)
    /// if it fails. Returns `false` — leaving `used` untouched — when the
    /// reservation would exceed `limit` or overflow. Because admission is a
    /// single compare-exchange on `used`, concurrent allocators can never
    /// overshoot the limit: `used <= limit` is an invariant, not a hint.
    pub fn try_reserve(&self, bytes: usize, limit: Option<usize>) -> bool {
        self.used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |used| {
                let next = used.checked_add(bytes)?;
                match limit {
                    Some(l) if next > l => None,
                    _ => Some(next),
                }
            })
            .is_ok()
    }

    /// Releases a reservation whose backing allocation failed.
    pub fn cancel_reserve(&self, bytes: usize) {
        let prev = self.used.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "cancelled more than was reserved");
    }

    /// Completes a successful reservation: counts the allocation event and
    /// folds the current usage into the peak watermark.
    ///
    /// The peak may transiently include a concurrent reservation that is
    /// later cancelled, but it can never exceed a configured limit because
    /// `used` itself never does.
    pub fn commit_reserve(&self) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.peak
            .fetch_max(self.used.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Records a free of `bytes`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if more bytes are freed than were allocated.
    pub fn record_free(&self, bytes: usize) {
        let prev = self.used.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "freed more bytes than allocated");
        self.frees.fetch_add(1, Ordering::Relaxed);
    }

    /// Bytes currently allocated and not yet freed.
    pub fn used_bytes(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// High watermark of [`used_bytes`](Self::used_bytes) over the lifetime
    /// of this accounting object.
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Total number of allocation events recorded.
    pub fn alloc_count(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }

    /// Total number of free events recorded.
    pub fn free_count(&self) -> u64 {
        self.frees.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn alloc_free_roundtrip() {
        let a = MemoryAccounting::new();
        a.record_alloc(100);
        a.record_alloc(50);
        assert_eq!(a.used_bytes(), 150);
        a.record_free(100);
        assert_eq!(a.used_bytes(), 50);
        assert_eq!(a.peak_bytes(), 150);
        assert_eq!(a.alloc_count(), 2);
        assert_eq!(a.free_count(), 1);
    }

    #[test]
    fn peak_is_monotone() {
        let a = MemoryAccounting::new();
        a.record_alloc(10);
        a.record_free(10);
        a.record_alloc(5);
        assert_eq!(a.peak_bytes(), 10);
        assert_eq!(a.used_bytes(), 5);
    }

    #[test]
    fn concurrent_accounting_balances() {
        let a = Arc::new(MemoryAccounting::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        a.record_alloc(64);
                        a.record_free(64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(a.used_bytes(), 0);
        assert!(a.peak_bytes() >= 64);
        assert_eq!(a.alloc_count(), 80_000);
        assert_eq!(a.free_count(), 80_000);
    }

    #[test]
    fn reserve_respects_limit_exactly() {
        let a = MemoryAccounting::new();
        assert!(a.try_reserve(60, Some(100)));
        a.commit_reserve();
        assert!(!a.try_reserve(41, Some(100)), "would exceed the limit");
        assert_eq!(a.used_bytes(), 60, "failed reserve leaves used untouched");
        assert!(a.try_reserve(40, Some(100)));
        a.commit_reserve();
        assert_eq!(a.used_bytes(), 100);
        assert_eq!(a.peak_bytes(), 100);
    }

    #[test]
    fn cancelled_reserve_is_not_counted() {
        let a = MemoryAccounting::new();
        assert!(a.try_reserve(50, Some(100)));
        a.cancel_reserve(50);
        assert_eq!(a.used_bytes(), 0);
        assert_eq!(a.alloc_count(), 0, "only commits count as allocations");
    }

    #[test]
    fn concurrent_reserves_never_exceed_limit() {
        let a = Arc::new(MemoryAccounting::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        if a.try_reserve(7, Some(64)) {
                            a.commit_reserve();
                            assert!(a.used_bytes() <= 64);
                            a.record_free(7);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(a.used_bytes(), 0);
        assert!(a.peak_bytes() <= 64, "hard cap: peak {} > 64", a.peak_bytes());
    }

    #[test]
    fn default_is_zeroed() {
        let a = MemoryAccounting::default();
        assert_eq!(a.used_bytes(), 0);
        assert_eq!(a.peak_bytes(), 0);
        assert_eq!(a.alloc_count(), 0);
    }
}
