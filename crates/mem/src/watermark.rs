//! Periodic used-memory sampling, used by the Figure 3 endurance experiment.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::PageAllocator;

/// One observation of total used memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemorySample {
    /// Time since the sampler started.
    pub elapsed: Duration,
    /// Bytes outstanding in the sampled [`PageAllocator`] at that instant.
    pub used_bytes: usize,
}

/// Samples a [`PageAllocator`]'s used bytes on a fixed interval from a
/// background thread.
///
/// The paper samples total used memory every 10 ms while stressing RCU
/// (§3.5); this type reproduces that methodology.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use pbs_mem::{PageAllocator, WatermarkSampler};
///
/// let pages = Arc::new(PageAllocator::new());
/// let sampler = WatermarkSampler::start(Arc::clone(&pages), Duration::from_millis(1));
/// let block = pages.allocate_pages(8).unwrap();
/// std::thread::sleep(Duration::from_millis(10));
/// pages.free_pages(block);
/// let samples = sampler.stop();
/// assert!(samples.iter().any(|s| s.used_bytes > 0));
/// ```
#[derive(Debug)]
pub struct WatermarkSampler {
    stop: Arc<AtomicBool>,
    samples: Arc<Mutex<Vec<MemorySample>>>,
    handle: Option<JoinHandle<()>>,
}

impl WatermarkSampler {
    /// Starts sampling `pages` every `interval` until [`stop`](Self::stop)
    /// is called.
    pub fn start(pages: Arc<PageAllocator>, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let samples = Arc::new(Mutex::new(Vec::new()));
        let handle = {
            let stop = Arc::clone(&stop);
            let samples = Arc::clone(&samples);
            std::thread::spawn(move || {
                let start = Instant::now();
                while !stop.load(Ordering::Relaxed) {
                    samples.lock().push(MemorySample {
                        elapsed: start.elapsed(),
                        used_bytes: pages.used_bytes(),
                    });
                    std::thread::sleep(interval);
                }
            })
        };
        Self {
            stop,
            samples,
            handle: Some(handle),
        }
    }

    /// Stops the sampler and returns all collected samples in order.
    pub fn stop(mut self) -> Vec<MemorySample> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        std::mem::take(&mut *self.samples.lock())
    }
}

impl Drop for WatermarkSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_monotone_timestamps() {
        let pages = Arc::new(PageAllocator::new());
        let sampler = WatermarkSampler::start(Arc::clone(&pages), Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(15));
        let samples = sampler.stop();
        assert!(samples.len() >= 2, "expected several samples");
        for pair in samples.windows(2) {
            assert!(pair[0].elapsed <= pair[1].elapsed);
        }
    }

    #[test]
    fn observes_allocation_activity() {
        let pages = Arc::new(PageAllocator::new());
        let sampler = WatermarkSampler::start(Arc::clone(&pages), Duration::from_millis(1));
        let b = pages.allocate_pages(16).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        pages.free_pages(b);
        std::thread::sleep(Duration::from_millis(10));
        let samples = sampler.stop();
        assert!(samples.iter().any(|s| s.used_bytes == 16 * crate::PAGE_SIZE));
        assert!(samples.iter().any(|s| s.used_bytes == 0));
    }

    #[test]
    fn drop_without_stop_joins_thread() {
        let pages = Arc::new(PageAllocator::new());
        let sampler = WatermarkSampler::start(pages, Duration::from_millis(1));
        drop(sampler); // must not hang or leak the thread
    }
}
