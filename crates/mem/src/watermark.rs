//! Periodic used-memory sampling, used by the Figure 3 endurance experiment.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::PageAllocator;

/// One observation of total used memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemorySample {
    /// Time since the sampler started.
    pub elapsed: Duration,
    /// Bytes outstanding in the sampled [`PageAllocator`] at that instant.
    pub used_bytes: usize,
}

/// Samples a [`PageAllocator`]'s used bytes on a fixed interval from a
/// background thread.
///
/// The paper samples total used memory every 10 ms while stressing RCU
/// (§3.5); this type reproduces that methodology.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use pbs_mem::{PageAllocator, WatermarkSampler};
///
/// let pages = Arc::new(PageAllocator::new());
/// let sampler = WatermarkSampler::start(Arc::clone(&pages), Duration::from_millis(1));
/// let block = pages.allocate_pages(8).unwrap();
/// std::thread::sleep(Duration::from_millis(10));
/// pages.free_pages(block);
/// let samples = sampler.stop();
/// assert!(samples.iter().any(|s| s.used_bytes > 0));
/// ```
#[derive(Debug)]
pub struct WatermarkSampler {
    stop: Arc<AtomicBool>,
    samples: Arc<Mutex<Vec<MemorySample>>>,
    handle: Option<JoinHandle<()>>,
    pages: Arc<PageAllocator>,
    start: Instant,
}

impl WatermarkSampler {
    /// Starts sampling `pages` every `interval` until [`stop`](Self::stop)
    /// is called.
    ///
    /// Ticks are scheduled on absolute deadlines (`start + k * interval`)
    /// rather than sleeping `interval` after each sample, so timestamps do
    /// not drift by the per-sample processing time over long endurance runs.
    /// If the thread falls behind (scheduler stall), missed ticks are
    /// skipped instead of replayed in a burst.
    pub fn start(pages: Arc<PageAllocator>, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let samples = Arc::new(Mutex::new(Vec::new()));
        let start = Instant::now();
        let handle = {
            let stop = Arc::clone(&stop);
            let samples = Arc::clone(&samples);
            let pages = Arc::clone(&pages);
            std::thread::spawn(move || {
                let mut tick: u32 = 0;
                while !stop.load(Ordering::Relaxed) {
                    samples.lock().push(MemorySample {
                        elapsed: start.elapsed(),
                        used_bytes: pages.used_bytes(),
                    });
                    tick += 1;
                    let mut deadline = start + interval * tick;
                    let now = Instant::now();
                    while deadline <= now {
                        tick += 1;
                        deadline = start + interval * tick;
                    }
                    // Sleep toward the deadline in short slices so `stop()`
                    // stays responsive even with long sampling intervals.
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        std::thread::sleep((deadline - now).min(Duration::from_millis(5)));
                    }
                }
            })
        };
        Self {
            stop,
            samples,
            handle: Some(handle),
            pages,
            start,
        }
    }

    /// Stops the sampler and returns all collected samples in order.
    ///
    /// A final sample is captured after the background thread has joined,
    /// so the series always ends with the state at `stop()` — endurance
    /// plots would otherwise miss up to one interval of tail activity.
    pub fn stop(mut self) -> Vec<MemorySample> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        let mut samples = std::mem::take(&mut *self.samples.lock());
        samples.push(MemorySample {
            elapsed: self.start.elapsed(),
            used_bytes: self.pages.used_bytes(),
        });
        samples
    }
}

impl Drop for WatermarkSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_monotone_timestamps() {
        let pages = Arc::new(PageAllocator::new());
        let sampler = WatermarkSampler::start(Arc::clone(&pages), Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(15));
        let samples = sampler.stop();
        assert!(samples.len() >= 2, "expected several samples");
        for pair in samples.windows(2) {
            assert!(pair[0].elapsed <= pair[1].elapsed);
        }
    }

    #[test]
    fn observes_allocation_activity() {
        let pages = Arc::new(PageAllocator::new());
        let sampler = WatermarkSampler::start(Arc::clone(&pages), Duration::from_millis(1));
        let b = pages.allocate_pages(16).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        pages.free_pages(b);
        std::thread::sleep(Duration::from_millis(10));
        let samples = sampler.stop();
        assert!(samples.iter().any(|s| s.used_bytes == 16 * crate::PAGE_SIZE));
        assert!(samples.iter().any(|s| s.used_bytes == 0));
    }

    #[test]
    fn sample_cadence_does_not_drift() {
        let pages = Arc::new(PageAllocator::new());
        let interval = Duration::from_millis(2);
        let sampler = WatermarkSampler::start(Arc::clone(&pages), interval);
        std::thread::sleep(Duration::from_millis(40));
        let samples = sampler.stop();
        // Deadline-based ticks: every timestamp sits on (close to) a
        // multiple of the interval rather than accumulating per-iteration
        // skew. Allow generous scheduler slack but reject systematic drift:
        // the k-th sample lands near k * interval, never at ~2k * interval
        // as a drifting sampler eventually would.
        for (k, s) in samples.iter().enumerate().skip(1).take(samples.len() - 2) {
            let ideal = interval * k as u32;
            assert!(
                s.elapsed + interval / 2 >= ideal,
                "sample {k} at {:?} ran ahead of its deadline {ideal:?}",
                s.elapsed
            );
        }
    }

    #[test]
    fn stop_captures_final_sample_immediately() {
        let pages = Arc::new(PageAllocator::new());
        // Interval far longer than the test: only the t=0 sample would ever
        // be recorded, so the tail state must come from stop()'s final
        // capture — and stop() must not block for the full interval.
        let sampler = WatermarkSampler::start(Arc::clone(&pages), Duration::from_secs(5));
        let b = pages.allocate_pages(4).unwrap();
        let begin = Instant::now();
        let samples = sampler.stop();
        assert!(
            begin.elapsed() < Duration::from_secs(1),
            "stop() must not wait out the sampling interval"
        );
        let last = samples.last().unwrap();
        assert_eq!(last.used_bytes, 4 * crate::PAGE_SIZE);
        pages.free_pages(b);
    }

    #[test]
    fn drop_without_stop_joins_thread() {
        let pages = Arc::new(PageAllocator::new());
        let sampler = WatermarkSampler::start(pages, Duration::from_millis(1));
        drop(sampler); // must not hang or leak the thread
    }
}
