//! Page-granular allocator over the process heap.
//!
//! Slab allocators in this workspace carve object slabs out of
//! [`PageBlock`]s. Blocks are allocated with the alignment the caller
//! requests (slabs use power-of-two size == alignment so an object pointer
//! can be masked back to its slab header).

use std::alloc::{alloc, dealloc, Layout};
use std::fmt;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use pbs_fault::{site, FaultInjector};

use crate::accounting::MemoryAccounting;
use crate::PAGE_SIZE;

/// Error returned when a [`PageAllocator`] refuses or fails an allocation.
///
/// Carries the number of bytes that were requested so OOM handlers can log
/// meaningful diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes that were requested when the allocator gave up.
    pub requested_bytes: usize,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "page allocator out of memory (requested {} bytes)",
            self.requested_bytes
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// An owned, page-aligned block of real memory.
///
/// The block is **not** freed on drop: ownership semantics mirror a kernel
/// page allocator where pages must be explicitly returned with
/// [`PageAllocator::free_pages`]. Leaking a `PageBlock` leaks memory and
/// keeps it counted as used. (Explicit return also keeps accounting attached
/// to the allocator rather than the block.)
pub struct PageBlock {
    ptr: NonNull<u8>,
    bytes: usize,
    align: usize,
}

// SAFETY: PageBlock uniquely owns its memory region; transferring it across
// threads transfers that ownership.
unsafe impl Send for PageBlock {}
unsafe impl Sync for PageBlock {}

impl fmt::Debug for PageBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PageBlock")
            .field("base", &self.ptr.as_ptr())
            .field("bytes", &self.bytes)
            .field("align", &self.align)
            .finish()
    }
}

impl PageBlock {
    /// Base address of the block.
    pub fn base(&self) -> NonNull<u8> {
        self.ptr
    }

    /// Length of the block in bytes (a multiple of [`PAGE_SIZE`]).
    pub fn len(&self) -> usize {
        self.bytes
    }

    /// Whether the block is empty (never true for live blocks).
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }

    /// Alignment the block was allocated with.
    pub fn align(&self) -> usize {
        self.align
    }
}

/// Builder for a [`PageAllocator`] (see [`PageAllocator::builder`]).
///
/// # Example
///
/// ```
/// use pbs_mem::PageAllocator;
///
/// let pages = PageAllocator::builder()
///     .limit_bytes(1 << 20) // 1 MiB hard limit
///     .build();
/// assert!(pages.allocate_pages(1).is_ok());
/// assert!(pages.allocate_pages(1 << 20).is_err());
/// ```
#[derive(Debug, Default)]
pub struct PageAllocatorBuilder {
    limit_bytes: Option<usize>,
    faults: Option<Arc<FaultInjector>>,
}

impl PageAllocatorBuilder {
    /// Sets a hard limit on total outstanding bytes; allocations that would
    /// exceed it fail with [`OutOfMemory`]. This models the finite physical
    /// memory of the paper's test machine. Admission is a compare-exchange
    /// reserve, so concurrent allocators can never overshoot the limit.
    pub fn limit_bytes(mut self, limit: usize) -> Self {
        self.limit_bytes = Some(limit);
        self
    }

    /// Attaches a fault injector: every block allocation consults it (under
    /// the [`site::PAGE_ALLOC`] catch-all plus the caller's specific site
    /// tag) and fails with [`OutOfMemory`] when a scheduled fault fires.
    pub fn fault_injector(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Builds the allocator.
    pub fn build(self) -> PageAllocator {
        PageAllocator {
            limit_bytes: self.limit_bytes,
            accounting: MemoryAccounting::new(),
            outstanding_blocks: AtomicUsize::new(0),
            faults: self.faults,
        }
    }
}

/// A page-granular memory allocator with accounting and an optional hard
/// limit.
///
/// This is the userspace stand-in for the kernel buddy allocator: slab
/// caches grow by requesting page blocks here and shrink by returning them.
///
/// # Example
///
/// ```
/// use pbs_mem::{PageAllocator, PAGE_SIZE};
///
/// let pages = PageAllocator::new();
/// let block = pages.allocate_aligned(2 * PAGE_SIZE, 2 * PAGE_SIZE)?;
/// assert_eq!(block.base().as_ptr() as usize % (2 * PAGE_SIZE), 0);
/// pages.free_pages(block);
/// # Ok::<(), pbs_mem::OutOfMemory>(())
/// ```
#[derive(Debug)]
pub struct PageAllocator {
    limit_bytes: Option<usize>,
    accounting: MemoryAccounting,
    outstanding_blocks: AtomicUsize,
    faults: Option<Arc<FaultInjector>>,
}

impl Default for PageAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl PageAllocator {
    /// Creates an allocator with no memory limit.
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Returns a builder for configuring limits.
    pub fn builder() -> PageAllocatorBuilder {
        PageAllocatorBuilder::default()
    }

    /// The fault injector this allocator consults, when one is attached.
    /// Caches built on this allocator share it so their own fault sites
    /// (e.g. [`site::FASTPATH_DISABLE`](pbs_fault::site::FASTPATH_DISABLE))
    /// ride the same seeded plan as the page-level ones.
    pub fn faults(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// Allocates `n` pages aligned to [`PAGE_SIZE`].
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] if `n` is zero-sized in a way the platform
    /// rejects, the configured limit would be exceeded, or the underlying
    /// system allocator fails.
    pub fn allocate_pages(&self, n: usize) -> Result<PageBlock, OutOfMemory> {
        self.allocate_aligned(n * PAGE_SIZE, PAGE_SIZE)
    }

    /// Allocates `bytes` (rounded up to whole pages) with the given
    /// alignment. Slab caches use `align == bytes` (power of two) so object
    /// pointers can be masked to the slab base.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] under the same conditions as
    /// [`allocate_pages`](Self::allocate_pages).
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn allocate_aligned(&self, bytes: usize, align: usize) -> Result<PageBlock, OutOfMemory> {
        self.allocate_aligned_at(bytes, align, site::PAGE_ALLOC)
    }

    /// [`allocate_aligned`](Self::allocate_aligned) with a fault-site tag,
    /// letting callers (slab grow paths) be targeted individually by an
    /// attached [`FaultInjector`]. Without an injector the tag is inert.
    pub fn allocate_aligned_at(
        &self,
        bytes: usize,
        align: usize,
        fault_site: &'static str,
    ) -> Result<PageBlock, OutOfMemory> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let align = align.max(PAGE_SIZE);
        // An over-aligned block (align > rounded size) consumes `align`
        // bytes of address space from the backing allocator, so charge,
        // allocate, and later free exactly that: accounting, the limit
        // reserve, and the `free_pages` layout all see one size.
        let bytes = (crate::pages_for(bytes.max(1)) * PAGE_SIZE).max(align);
        let oom = OutOfMemory {
            requested_bytes: bytes,
        };
        if let Some(faults) = &self.faults {
            // Consult both the catch-all and the caller's specific tag so
            // one schedule can cover every allocation while per-site call
            // counts stay complete for coverage audits.
            let catch_all = faults.should_fail(site::PAGE_ALLOC);
            let tagged = fault_site != site::PAGE_ALLOC && faults.should_fail(fault_site);
            if catch_all || tagged {
                return Err(oom);
            }
        }
        // Reserve-commit-cancel: admission and the usage update are one
        // compare-exchange, so `used_bytes <= limit` holds at every instant
        // — concurrent allocators cannot overshoot a configured limit.
        if !self.accounting.try_reserve(bytes, self.limit_bytes) {
            return Err(oom);
        }
        let Ok(layout) = Layout::from_size_align(bytes, align) else {
            self.accounting.cancel_reserve(bytes);
            return Err(oom);
        };
        // SAFETY: layout has non-zero size (bytes >= PAGE_SIZE).
        let raw = unsafe { alloc(layout) };
        let Some(ptr) = NonNull::new(raw) else {
            self.accounting.cancel_reserve(bytes);
            return Err(oom);
        };
        self.accounting.commit_reserve();
        self.outstanding_blocks.fetch_add(1, Ordering::Relaxed);
        Ok(PageBlock { ptr, bytes, align })
    }

    /// Returns a block to the allocator, releasing its memory.
    pub fn free_pages(&self, block: PageBlock) {
        let layout = Layout::from_size_align(block.bytes, block.align)
            .expect("layout was valid at allocation time");
        // SAFETY: `block` was produced by `allocate_aligned` with exactly
        // this layout and `PageBlock` is not Clone, so this is the unique
        // owner.
        unsafe { dealloc(block.ptr.as_ptr(), layout) };
        self.accounting.record_free(block.bytes);
        self.outstanding_blocks.fetch_sub(1, Ordering::Relaxed);
    }

    /// Bytes currently outstanding (allocated, not yet returned).
    pub fn used_bytes(&self) -> usize {
        self.accounting.used_bytes()
    }

    /// Peak of [`used_bytes`](Self::used_bytes) over the allocator lifetime.
    pub fn peak_bytes(&self) -> usize {
        self.accounting.peak_bytes()
    }

    /// Number of blocks currently outstanding.
    pub fn outstanding_blocks(&self) -> usize {
        self.outstanding_blocks.load(Ordering::Relaxed)
    }

    /// The configured hard limit, if any.
    pub fn limit_bytes(&self) -> Option<usize> {
        self.limit_bytes
    }

    /// Shared accounting counters (alloc/free event counts, peak).
    pub fn accounting(&self) -> &MemoryAccounting {
        &self.accounting
    }

    /// Fraction of the limit currently used, or `0.0` when unlimited.
    ///
    /// Prudence's OOM-deferral logic uses this to decide when the system is
    /// "under memory pressure" (paper §4.2, *Handling memory pressure*).
    pub fn pressure(&self) -> f64 {
        match self.limit_bytes {
            Some(limit) if limit > 0 => self.used_bytes() as f64 / limit as f64,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_free_pages() {
        let pages = PageAllocator::new();
        let b = pages.allocate_pages(3).unwrap();
        assert_eq!(b.len(), 3 * PAGE_SIZE);
        assert_eq!(pages.used_bytes(), 3 * PAGE_SIZE);
        assert_eq!(pages.outstanding_blocks(), 1);
        pages.free_pages(b);
        assert_eq!(pages.used_bytes(), 0);
        assert_eq!(pages.outstanding_blocks(), 0);
    }

    #[test]
    fn limit_enforced() {
        let pages = PageAllocator::builder().limit_bytes(8 * PAGE_SIZE).build();
        let a = pages.allocate_pages(4).unwrap();
        let b = pages.allocate_pages(4).unwrap();
        let err = pages.allocate_pages(1).unwrap_err();
        assert_eq!(err.requested_bytes, PAGE_SIZE);
        pages.free_pages(a);
        assert!(pages.allocate_pages(1).is_ok());
        pages.free_pages(b);
    }

    #[test]
    fn aligned_allocation_is_aligned() {
        let pages = PageAllocator::new();
        for order in 0..4 {
            let bytes = PAGE_SIZE << order;
            let b = pages.allocate_aligned(bytes, bytes).unwrap();
            assert_eq!(b.base().as_ptr() as usize % bytes, 0);
            assert_eq!(b.len(), bytes);
            pages.free_pages(b);
        }
    }

    #[test]
    fn sub_page_request_rounds_up() {
        let pages = PageAllocator::new();
        let b = pages.allocate_aligned(100, 64).unwrap();
        assert_eq!(b.len(), PAGE_SIZE);
        pages.free_pages(b);
    }

    #[test]
    fn pressure_reporting() {
        let pages = PageAllocator::builder().limit_bytes(10 * PAGE_SIZE).build();
        assert_eq!(pages.pressure(), 0.0);
        let b = pages.allocate_pages(5).unwrap();
        assert!((pages.pressure() - 0.5).abs() < 1e-9);
        pages.free_pages(b);
        let unlimited = PageAllocator::new();
        assert_eq!(unlimited.pressure(), 0.0);
    }

    #[test]
    fn display_of_oom_error() {
        let err = OutOfMemory {
            requested_bytes: 4096,
        };
        assert!(err.to_string().contains("4096"));
    }

    #[test]
    fn concurrent_allocation_respects_limit() {
        use std::sync::Arc;
        let pages = Arc::new(PageAllocator::builder().limit_bytes(64 * PAGE_SIZE).build());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let pages = Arc::clone(&pages);
                std::thread::spawn(move || {
                    let mut held = Vec::new();
                    let mut failures = 0u32;
                    for _ in 0..200 {
                        match pages.allocate_pages(2) {
                            Ok(b) => held.push(b),
                            Err(_) => {
                                failures += 1;
                                if let Some(b) = held.pop() {
                                    pages.free_pages(b);
                                }
                            }
                        }
                    }
                    for b in held {
                        pages.free_pages(b);
                    }
                    failures
                })
            })
            .collect();
        let failures: u32 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert!(failures > 0, "the limit must have pushed back");
        assert_eq!(pages.used_bytes(), 0);
        // The limit is a hard cap: the compare-exchange reserve admits an
        // allocation and charges it in one step, so not even a transient
        // overshoot is possible.
        assert!(pages.peak_bytes() <= 64 * PAGE_SIZE);
    }

    #[test]
    fn over_aligned_block_charges_its_alignment() {
        let pages = PageAllocator::new();
        let b = pages.allocate_aligned(PAGE_SIZE, 8 * PAGE_SIZE).unwrap();
        assert_eq!(b.len(), 8 * PAGE_SIZE, "block spans the aligned size");
        assert_eq!(b.base().as_ptr() as usize % (8 * PAGE_SIZE), 0);
        assert_eq!(pages.used_bytes(), 8 * PAGE_SIZE, "charged what it consumes");
        pages.free_pages(b);
        assert_eq!(pages.used_bytes(), 0);
    }

    #[test]
    fn over_aligned_block_counts_against_limit() {
        let pages = PageAllocator::builder().limit_bytes(8 * PAGE_SIZE).build();
        // 1 page requested but 8-page alignment: the reserve must charge 8
        // pages, so a second over-aligned block cannot be admitted.
        let a = pages.allocate_aligned(PAGE_SIZE, 8 * PAGE_SIZE).unwrap();
        assert!(pages.allocate_aligned(PAGE_SIZE, 8 * PAGE_SIZE).is_err());
        pages.free_pages(a);
    }

    #[test]
    fn injected_fault_fails_allocation_without_charging() {
        use pbs_fault::Schedule;
        let faults = Arc::new(FaultInjector::new(11));
        faults.schedule(site::PAGE_ALLOC, Schedule::Nth(2));
        let pages = PageAllocator::builder()
            .fault_injector(Arc::clone(&faults))
            .build();
        let a = pages.allocate_pages(1).unwrap();
        let err = pages.allocate_pages(1).unwrap_err();
        assert_eq!(err.requested_bytes, PAGE_SIZE);
        assert_eq!(pages.used_bytes(), PAGE_SIZE, "failed alloc charges nothing");
        assert!(pages.allocate_pages(1).is_ok_and(|b| {
            pages.free_pages(b);
            true
        }));
        pages.free_pages(a);
        assert_eq!(faults.injected(site::PAGE_ALLOC), 1);
    }

    #[test]
    fn tagged_site_is_consulted_alongside_catch_all() {
        use pbs_fault::Schedule;
        let faults = Arc::new(FaultInjector::new(3));
        faults.schedule("test.grow", Schedule::EveryKth(1));
        let pages = PageAllocator::builder()
            .fault_injector(Arc::clone(&faults))
            .build();
        // Untagged allocations are unaffected by the site-specific schedule.
        let b = pages.allocate_pages(1).unwrap();
        pages.free_pages(b);
        // Tagged ones always fail under the blackout.
        assert!(pages
            .allocate_aligned_at(PAGE_SIZE, PAGE_SIZE, "test.grow")
            .is_err());
        assert_eq!(faults.injected("test.grow"), 1);
        assert_eq!(faults.calls(site::PAGE_ALLOC), 2, "catch-all saw every call");
        assert_eq!(pages.used_bytes(), 0);
    }

    #[test]
    fn outstanding_blocks_tracks_each_block() {
        let pages = PageAllocator::new();
        let blocks: Vec<_> = (0..5).map(|_| pages.allocate_pages(1).unwrap()).collect();
        assert_eq!(pages.outstanding_blocks(), 5);
        for b in blocks {
            pages.free_pages(b);
        }
        assert_eq!(pages.outstanding_blocks(), 0);
        assert_eq!(pages.limit_bytes(), None);
    }

    #[test]
    fn memory_is_writable() {
        let pages = PageAllocator::new();
        let b = pages.allocate_pages(1).unwrap();
        // SAFETY: we own the block and stay in bounds.
        unsafe {
            let p = b.base().as_ptr();
            for i in 0..PAGE_SIZE {
                p.add(i).write((i % 251) as u8);
            }
            for i in 0..PAGE_SIZE {
                assert_eq!(p.add(i).read(), (i % 251) as u8);
            }
        }
        pages.free_pages(b);
    }
}
