//! # pbs-mem — page allocator and memory accounting substrate
//!
//! Userspace analog of the Linux page (buddy) allocator, scoped to what the
//! Prudence reproduction needs:
//!
//! * page-granular allocation of real, aligned memory (slabs are carved out
//!   of [`PageBlock`]s),
//! * global used/peak accounting so experiments can sample "total used
//!   memory" the way Figure 3 of the paper does,
//! * a configurable hard limit that makes allocations fail with
//!   [`OutOfMemory`], standing in for the kernel OOM condition.
//!
//! # Example
//!
//! ```
//! use pbs_mem::{PageAllocator, PAGE_SIZE};
//!
//! let pages = PageAllocator::new();
//! let block = pages.allocate_pages(4).unwrap();
//! assert_eq!(block.len(), 4 * PAGE_SIZE);
//! assert_eq!(pages.used_bytes(), 4 * PAGE_SIZE);
//! pages.free_pages(block);
//! assert_eq!(pages.used_bytes(), 0);
//! ```

mod accounting;
mod page_alloc;
mod watermark;

pub use accounting::MemoryAccounting;
pub use page_alloc::{OutOfMemory, PageAllocator, PageAllocatorBuilder, PageBlock};
pub use watermark::{MemorySample, WatermarkSampler};

/// Size of a simulated page in bytes (matches the common 4 KiB kernel page).
pub const PAGE_SIZE: usize = 4096;

/// Round `bytes` up to a whole number of pages.
///
/// # Example
///
/// ```
/// assert_eq!(pbs_mem::pages_for(1), 1);
/// assert_eq!(pbs_mem::pages_for(pbs_mem::PAGE_SIZE + 1), 2);
/// assert_eq!(pbs_mem::pages_for(0), 0);
/// ```
pub fn pages_for(bytes: usize) -> usize {
    bytes.div_ceil(PAGE_SIZE)
}
